//! Property-based tests for the blocked GEMM kernels (satellite of the
//! perf-core ISSUE): across random shapes — including the k=1 and n=1
//! edge cases — the blocked `gemm` and the transpose-free `gemm_nt` /
//! `gemm_tn` must agree with the naive reference kernel to ≤1e-4 relative
//! error, and the layers built on them must still pass gradcheck.

use proptest::prelude::*;
use vehigan_tensor::gemm;
use vehigan_tensor::gradcheck::{finite_diff_grad, max_relative_error};
use vehigan_tensor::init::{randn, seeded_rng};
use vehigan_tensor::layer::Layer;
use vehigan_tensor::layers::{Conv2D, Dense, Padding};
use vehigan_tensor::{Init, Tensor};

fn buf(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-2.0f32..2.0, len)
}

/// Shape strategy biased toward kernel edges: includes 1s (the k=1 / n=1
/// cases the ISSUE calls out) and sizes straddling the 4/8- and 6/16-wide
/// register tiles.
fn dim() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(1usize),
        1usize..8,
        Just(16usize),
        15usize..35,
        Just(64usize)
    ]
}

fn rel_err(got: &[f32], want: &[f32]) -> f32 {
    got.iter()
        .zip(want)
        .map(|(g, w)| (g - w).abs() / w.abs().max(1.0))
        .fold(0.0f32, f32::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_gemm_matches_naive(
        (m, k, n, a, b) in (dim(), dim(), dim()).prop_flat_map(|(m, k, n)| {
            (Just(m), Just(k), Just(n), buf(m * k), buf(k * n))
        })
    ) {
        let mut want = vec![0.0f32; m * n];
        gemm::naive(m, k, n, &a, &b, &mut want);
        let mut got = vec![0.0f32; m * n];
        gemm::gemm(m, k, n, &a, &b, &mut got);
        prop_assert!(
            rel_err(&got, &want) <= 1e-4,
            "blocked vs naive diverged at ({m},{k},{n})"
        );
    }

    #[test]
    fn gemm_nt_matches_naive_on_pretransposed_operand(
        (m, k, n, a, bt) in (dim(), dim(), dim()).prop_flat_map(|(m, k, n)| {
            (Just(m), Just(k), Just(n), buf(m * k), buf(n * k))
        })
    ) {
        // Reference: materialize B = Bᵀᵀ, then naive.
        let mut b = vec![0.0f32; k * n];
        gemm::transpose_into(n, k, &bt, &mut b);
        let mut want = vec![0.0f32; m * n];
        gemm::naive(m, k, n, &a, &b, &mut want);
        let mut got = vec![0.0f32; m * n];
        gemm::gemm_nt(m, n, k, &a, &bt, &mut got);
        prop_assert!(
            rel_err(&got, &want) <= 1e-4,
            "gemm_nt vs naive diverged at ({m},{k},{n})"
        );
    }

    #[test]
    fn gemm_tn_matches_naive_on_pretransposed_operand(
        (m, k, n, at, b) in (dim(), dim(), dim()).prop_flat_map(|(m, k, n)| {
            (Just(m), Just(k), Just(n), buf(k * m), buf(k * n))
        })
    ) {
        let mut a = vec![0.0f32; k * m];
        gemm::transpose_into(k, m, &at, &mut a);
        let mut want = vec![0.0f32; m * n];
        gemm::naive(m, k, n, &a, &b, &mut want);
        let mut got = vec![0.0f32; m * n];
        gemm::gemm_tn(m, n, k, &at, &b, &mut got);
        // tn keeps the naive per-element reduction order exactly.
        prop_assert_eq!(got, want, "gemm_tn must be bitwise naive at ({},{},{})", m, k, n);
    }

    #[test]
    fn transpose_roundtrips(
        (m, n, v) in (dim(), dim()).prop_flat_map(|(m, n)| (Just(m), Just(n), buf(m * n)))
    ) {
        let mut t = vec![0.0f32; m * n];
        gemm::transpose_into(m, n, &v, &mut t);
        let mut back = vec![0.0f32; m * n];
        gemm::transpose_into(n, m, &t, &mut back);
        prop_assert_eq!(back, v);
    }

    #[test]
    fn dense_gradcheck_on_transpose_free_backward(
        seed in 0u64..1000, batch in 1usize..5, out_dim in 1usize..4
    ) {
        // out_dim=1 exercises the gemm_tn n==1 axpy fast path.
        let mut rng = seeded_rng(seed);
        let mut d = Dense::new(6, out_dim, Init::XavierUniform, &mut rng);
        let x = randn(&[batch, 6], &mut rng);
        let _ = d.forward(&x);
        let analytic_dx = d.backward(&Tensor::ones(&[batch, out_dim]));
        let analytic_dw = d.params()[0].grad.clone();
        let snap = d.save();
        let numeric_dx = finite_diff_grad(|xx| {
            let mut d2 = Dense::from_snapshot(&snap).unwrap();
            d2.forward(xx).sum()
        }, &x, 1e-2);
        prop_assert!(max_relative_error(&analytic_dx, &numeric_dx) < 2e-2);
        let w0 = d.params()[0].value.clone();
        let numeric_dw = finite_diff_grad(|ww| {
            let mut d2 = Dense::from_snapshot(&snap).unwrap();
            d2.params_mut()[0].value = ww.clone();
            d2.forward(&x).sum()
        }, &w0, 1e-2);
        prop_assert!(max_relative_error(&analytic_dw, &numeric_dw) < 2e-2);
    }

    #[test]
    fn conv_gradcheck_on_transpose_free_backward(
        seed in 0u64..500, same in any::<bool>(), cout in 1usize..3
    ) {
        let mut rng = seeded_rng(seed);
        let padding = if same { Padding::Same } else { Padding::Valid };
        let mut conv = Conv2D::new(1, cout, (2, 2), padding, Init::HeUniform, &mut rng);
        let x = randn(&[1, 4, 4, 1], &mut rng);
        let y = conv.forward(&x);
        let analytic_dx = conv.backward(&Tensor::ones(y.shape()));
        let analytic_dw = conv.params()[0].grad.clone();
        let snap = conv.save();
        let numeric_dx = finite_diff_grad(|xx| {
            let mut c2 = Conv2D::from_snapshot(&snap).unwrap();
            c2.forward(xx).sum()
        }, &x, 1e-2);
        prop_assert!(max_relative_error(&analytic_dx, &numeric_dx) < 2e-2);
        let w0 = conv.params()[0].value.clone();
        let numeric_dw = finite_diff_grad(|ww| {
            let mut c2 = Conv2D::from_snapshot(&snap).unwrap();
            c2.params_mut()[0].value = ww.clone();
            c2.forward(&x).sum()
        }, &w0, 1e-2);
        prop_assert!(max_relative_error(&analytic_dw, &numeric_dw) < 2e-2);
    }
}
