//! Property-based tests for the int8 GEMM kernel family (satellite of the
//! int8-backend ISSUE): across random shapes and values — including the
//! k=1 / n=1 edges and the ±127 saturation extremes — the dispatched
//! `gemm_i8`, the portable `gemm_i8_portable`, and the fused
//! `gemm_i8_fused` must agree **exactly** (i32 equality, not tolerance)
//! with the naive i8×i8→i32 reference. Integer accumulation is
//! associative, so any mismatch is a packing or kernel bug, never
//! rounding.

use proptest::prelude::*;
use vehigan_tensor::gemm::{gemm_i8, gemm_i8_fused, gemm_i8_portable, naive_i8, PackedI8};

fn buf_i8(len: usize) -> impl Strategy<Value = Vec<i8>> {
    proptest::collection::vec(any::<i8>(), len)
}

/// Shapes biased toward kernel edges: 1s, odd `k` (the padded-pair path),
/// and sizes straddling the 8-wide column strips and 4-row blocks.
fn dim() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(1usize),
        1usize..9,
        Just(8usize),
        Just(16usize),
        7usize..27,
        Just(33usize)
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dispatched_kernel_is_exactly_naive(
        (m, k, n, a, b) in (dim(), dim(), dim()).prop_flat_map(|(m, k, n)| {
            (Just(m), Just(k), Just(n), buf_i8(m * k), buf_i8(k * n))
        })
    ) {
        let mut want = vec![0i32; m * n];
        naive_i8(m, k, n, &a, &b, &mut want);
        let packed = PackedI8::pack(k, n, &b);
        let mut got = vec![0i32; m * n];
        gemm_i8(m, &a, &packed, &mut got);
        prop_assert_eq!(got, want, "gemm_i8 must be exactly naive at ({},{},{})", m, k, n);
    }

    #[test]
    fn portable_kernel_is_exactly_naive(
        (m, k, n, a, b) in (dim(), dim(), dim()).prop_flat_map(|(m, k, n)| {
            (Just(m), Just(k), Just(n), buf_i8(m * k), buf_i8(k * n))
        })
    ) {
        let mut want = vec![0i32; m * n];
        naive_i8(m, k, n, &a, &b, &mut want);
        let packed = PackedI8::pack(k, n, &b);
        let mut got = vec![0i32; m * n];
        gemm_i8_portable(m, &a, &packed, &mut got);
        prop_assert_eq!(got, want, "portable must be exactly naive at ({},{},{})", m, k, n);
    }

    #[test]
    fn dispatched_and_portable_agree_bitwise(
        (m, k, n, a, b) in (dim(), dim(), dim()).prop_flat_map(|(m, k, n)| {
            (Just(m), Just(k), Just(n), buf_i8(m * k), buf_i8(k * n))
        })
    ) {
        let packed = PackedI8::pack(k, n, &b);
        let mut dispatched = vec![0i32; m * n];
        gemm_i8(m, &a, &packed, &mut dispatched);
        let mut portable = vec![0i32; m * n];
        gemm_i8_portable(m, &a, &packed, &mut portable);
        prop_assert_eq!(
            dispatched, portable,
            "dispatched and portable diverged at ({},{},{})", m, k, n
        );
    }

    #[test]
    fn fused_shared_input_equals_member_loop(
        (m, k, n, g, a, bs) in (dim(), dim(), 1usize..9, 1usize..5).prop_flat_map(|(m, k, n, g)| {
            (Just(m), Just(k), Just(n), Just(g), buf_i8(m * k), buf_i8(g * k * n))
        })
    ) {
        let packs: Vec<PackedI8> = (0..g)
            .map(|gi| PackedI8::pack(k, n, &bs[gi * k * n..(gi + 1) * k * n]))
            .collect();
        let refs: Vec<&PackedI8> = packs.iter().collect();
        let mut fused = vec![0i32; g * m * n];
        gemm_i8_fused(m, &a, &refs, &mut fused);
        for gi in 0..g {
            let mut want = vec![0i32; m * n];
            naive_i8(m, k, n, &a, &bs[gi * k * n..(gi + 1) * k * n], &mut want);
            prop_assert_eq!(
                &fused[gi * m * n..(gi + 1) * m * n], &want[..],
                "fused member {} diverged at ({},{},{})", gi, m, k, n
            );
        }
    }

    #[test]
    fn saturated_operands_accumulate_exactly(
        (m, k, n) in (1usize..5, 1usize..70, 1usize..10)
    ) {
        // All-(-128)·(-128) is the worst-case accumulator growth; exact
        // for any k within the documented 65534 bound.
        let a = vec![i8::MIN; m * k];
        let b = vec![i8::MIN; k * n];
        let packed = PackedI8::pack(k, n, &b);
        let mut got = vec![0i32; m * n];
        gemm_i8(m, &a, &packed, &mut got);
        prop_assert!(got.iter().all(|&v| v == (k as i32) * 128 * 128));
    }
}
