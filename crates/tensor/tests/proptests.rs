//! Property-based tests for the tensor substrate.
//!
//! These pin down the algebraic invariants the rest of the VehiGAN stack
//! silently relies on: linearity of matmul, exactness of backprop against
//! finite differences for randomly-configured layers, and serialization
//! round-trips for arbitrary models.

use proptest::prelude::*;
use vehigan_tensor::gradcheck::{finite_diff_grad, max_relative_error};
use vehigan_tensor::init::{randn, seeded_rng};
use vehigan_tensor::layer::Layer;
use vehigan_tensor::layers::{Activation, Conv2D, Dense, Flatten, Padding, UpSample2D};
use vehigan_tensor::{Init, Sequential, Tensor};

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn matmul_distributes_over_addition(
        a in small_vec(6), b in small_vec(6), c in small_vec(8)
    ) {
        let a = Tensor::from_vec(a, &[3, 2]);
        let b = Tensor::from_vec(b, &[3, 2]);
        let c = Tensor::from_vec(c, &[2, 4]);
        let lhs = (&a + &b).matmul(&c);
        let rhs = &a.matmul(&c) + &b.matmul(&c);
        for (l, r) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((l - r).abs() < 1e-3, "{l} vs {r}");
        }
    }

    #[test]
    fn transpose_swaps_matmul_order(a in small_vec(6), b in small_vec(8)) {
        let a = Tensor::from_vec(a, &[3, 2]);
        let b = Tensor::from_vec(b, &[2, 4]);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for (l, r) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((l - r).abs() < 1e-3);
        }
    }

    #[test]
    fn sign_times_abs_recovers_value(v in small_vec(12)) {
        let t = Tensor::from_vec(v, &[12]);
        let recon = &t.sign() * &t.map(f32::abs);
        prop_assert_eq!(recon.as_slice(), t.as_slice());
    }

    #[test]
    fn stack_then_take_is_identity(v in small_vec(12)) {
        let t = Tensor::from_vec(v, &[4, 3]);
        let picked = t.take(&[0, 1, 2, 3]);
        prop_assert_eq!(picked, t);
    }

    #[test]
    fn dense_input_grad_matches_fd(seed in 0u64..1000, batch in 1usize..4) {
        let mut rng = seeded_rng(seed);
        let mut d = Dense::new(5, 3, Init::XavierUniform, &mut rng);
        let x = randn(&[batch, 5], &mut rng);
        let _ = d.forward(&x);
        let analytic = d.backward(&Tensor::ones(&[batch, 3]));
        let snap = d.save();
        let numeric = finite_diff_grad(|xx| {
            let mut d2 = Dense::from_snapshot(&snap).unwrap();
            d2.forward(xx).sum()
        }, &x, 1e-2);
        prop_assert!(max_relative_error(&analytic, &numeric) < 2e-2);
    }

    #[test]
    fn conv_input_grad_matches_fd(seed in 0u64..500, same in any::<bool>()) {
        let mut rng = seeded_rng(seed);
        let padding = if same { Padding::Same } else { Padding::Valid };
        let mut conv = Conv2D::new(1, 2, (2, 2), padding, Init::HeUniform, &mut rng);
        let x = randn(&[1, 4, 4, 1], &mut rng);
        let y = conv.forward(&x);
        let analytic = conv.backward(&Tensor::ones(y.shape()));
        let snap = conv.save();
        let numeric = finite_diff_grad(|xx| {
            let mut c2 = Conv2D::from_snapshot(&snap).unwrap();
            c2.forward(xx).sum()
        }, &x, 1e-2);
        prop_assert!(max_relative_error(&analytic, &numeric) < 2e-2);
    }

    #[test]
    fn upsample_preserves_sum_scaled(seed in 0u64..1000, fy in 1usize..4, fx in 1usize..4) {
        let mut rng = seeded_rng(seed);
        let mut up = UpSample2D::new(fy, fx);
        let x = randn(&[1, 3, 3, 2], &mut rng);
        let y = up.forward(&x);
        // Nearest-neighbor replication multiplies the sum by fy·fx.
        let expect = x.sum() * (fy * fx) as f32;
        prop_assert!((y.sum() - expect).abs() < 1e-2 * expect.abs().max(1.0));
    }

    #[test]
    fn model_roundtrip_preserves_predictions(seed in 0u64..1000) {
        let mut rng = seeded_rng(seed);
        let mut m = Sequential::new();
        m.push(Conv2D::new(1, 3, (2, 2), Padding::Same, Init::HeUniform, &mut rng));
        m.push(Activation::leaky_relu(0.2));
        m.push(Flatten::new());
        m.push(Dense::new(5 * 4 * 3, 1, Init::XavierUniform, &mut rng));
        let x = randn(&[2, 5, 4, 1], &mut rng);
        let y1 = m.forward(&x);
        let mut m2 = Sequential::from_bytes(&m.to_bytes()).unwrap();
        let y2 = m2.forward(&x);
        prop_assert_eq!(y1.as_slice(), y2.as_slice());
    }

    #[test]
    fn clip_weights_is_idempotent(seed in 0u64..1000, c in 0.001f32..0.5) {
        let mut rng = seeded_rng(seed);
        let mut m = Sequential::new();
        m.push(Dense::new(4, 4, Init::HeUniform, &mut rng));
        m.clip_weights(c);
        let snap1 = m.to_bytes();
        m.clip_weights(c);
        prop_assert_eq!(snap1, m.to_bytes());
    }

    #[test]
    fn leaky_relu_grad_never_zero(alpha in 0.01f32..0.5, v in small_vec(16)) {
        // Unlike ReLU, LeakyReLU passes gradient everywhere — important for
        // WGAN critics (no dead units to mask FGSM gradients).
        let mut act = Activation::leaky_relu(alpha);
        let x = Tensor::from_vec(v, &[1, 16]);
        let _ = act.forward(&x);
        let g = act.backward(&Tensor::ones(&[1, 16]));
        prop_assert!(g.as_slice().iter().all(|&gv| gv > 0.0));
    }
}
