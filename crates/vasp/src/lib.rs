//! # vehigan-vasp
//!
//! The attack-injection framework of the VehiGAN reproduction — the
//! substitute for VASP ("V2X Application Spoofing Platform", Ansari et al.,
//! VehicleSec 2023), which the paper uses to generate its misbehavior
//! dataset (§IV-A).
//!
//! The crate implements the complete in-scope threat matrix of Table I:
//! nine attack kinds ([`AttackKind`]) crossed with six field targets
//! ([`TargetField`]), yielding the 35 named attacks of Table III
//! ([`Attack::catalog`]) — including the six *advanced* attacks that
//! falsify heading and yaw rate **coherently** (the transmitted yaw rate is
//! the exact discrete derivative of the transmitted heading, replicating a
//! fake maneuver as in Fig 1b).
//!
//! # Example
//!
//! ```
//! use vehigan_sim::{SimConfig, TrafficSimulator};
//! use vehigan_vasp::{Attack, DatasetBuilder, DatasetConfig};
//!
//! let fleet = TrafficSimulator::new(SimConfig::quick_test()).run();
//! let builder = DatasetBuilder::new(&fleet, DatasetConfig::default());
//! for dataset in builder.full_campaign() {
//!     let attack = dataset.attack.expect("campaign datasets are attacks");
//!     assert!(dataset.num_attackers() > 0, "{attack}");
//! }
//! ```

#![warn(missing_docs)]

mod attack;
mod dataset;
mod inject;

pub use attack::{Attack, AttackKind, InvalidAttackError, TargetField};
pub use dataset::{DatasetBuilder, DatasetConfig, LabeledTrace, MisbehaviorDataset};
pub use inject::{inject, AttackParams, AttackPolicy, AttackedTrace};
