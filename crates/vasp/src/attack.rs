//! The attack taxonomy of Table I: attack kinds × targeted fields.

use std::fmt;

/// How the targeted field's value is falsified (rows of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum AttackKind {
    /// Transmit a random value each message.
    Random,
    /// Transmit the true value plus a fresh random offset each message.
    RandomOffset,
    /// Transmit a constant value (sampled once per attacker).
    Constant,
    /// Transmit the true value plus a constant offset (sampled once).
    ConstantOffset,
    /// Transmit a significantly high value.
    High,
    /// Transmit a significantly low value.
    Low,
    /// Transmit the opposite of the true heading (heading only).
    Opposite,
    /// Transmit a heading perpendicular to the true one (heading only).
    Perpendicular,
    /// Transmit a heading rotating over time (heading only).
    Rotating,
}

impl AttackKind {
    /// All attack kinds in Table I row order.
    pub const ALL: [AttackKind; 9] = [
        AttackKind::Random,
        AttackKind::RandomOffset,
        AttackKind::Constant,
        AttackKind::ConstantOffset,
        AttackKind::High,
        AttackKind::Low,
        AttackKind::Opposite,
        AttackKind::Perpendicular,
        AttackKind::Rotating,
    ];

    fn label(self) -> &'static str {
        match self {
            AttackKind::Random => "Random",
            AttackKind::RandomOffset => "Random",
            AttackKind::Constant => "Constant",
            AttackKind::ConstantOffset => "Constant",
            AttackKind::High => "High",
            AttackKind::Low => "Low",
            AttackKind::Opposite => "Opposite",
            AttackKind::Perpendicular => "Perpendicular",
            AttackKind::Rotating => "Rotating",
        }
    }

    fn is_offset(self) -> bool {
        matches!(self, AttackKind::RandomOffset | AttackKind::ConstantOffset)
    }
}

/// Which BSM field(s) the attack falsifies (columns of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum TargetField {
    /// `(pos_x, pos_y)`.
    Position,
    /// Scalar speed.
    Speed,
    /// Longitudinal acceleration.
    Acceleration,
    /// Heading angle.
    Heading,
    /// Yaw rate.
    YawRate,
    /// Heading and yaw rate falsified together, coherently — the paper's
    /// "advanced attacks" (Table I circled 30–35, last six rows of
    /// Table III).
    HeadingYawRate,
}

impl TargetField {
    /// All target fields in Table I column order.
    pub const ALL: [TargetField; 6] = [
        TargetField::Position,
        TargetField::Speed,
        TargetField::Acceleration,
        TargetField::Heading,
        TargetField::YawRate,
        TargetField::HeadingYawRate,
    ];

    fn label(self) -> &'static str {
        match self {
            TargetField::Position => "Position",
            TargetField::Speed => "Speed",
            TargetField::Acceleration => "Acceleration",
            TargetField::Heading => "Heading",
            TargetField::YawRate => "YawRate",
            TargetField::HeadingYawRate => "HeadingYawRate",
        }
    }
}

/// Error building an attack outside the Table I matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidAttackError {
    kind: AttackKind,
    field: TargetField,
}

impl fmt::Display for InvalidAttackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "attack kind {:?} is not defined for field {:?} in the threat matrix",
            self.kind, self.field
        )
    }
}

impl std::error::Error for InvalidAttackError {}

/// A validated (kind, field) pair from the Table I attack matrix.
///
/// # Examples
///
/// ```
/// use vehigan_vasp::{Attack, AttackKind, TargetField};
///
/// let attack = Attack::new(AttackKind::Rotating, TargetField::Heading)?;
/// assert_eq!(attack.name(), "RotatingHeading");
/// assert!(Attack::new(AttackKind::Rotating, TargetField::Speed).is_err());
/// # Ok::<(), vehigan_vasp::InvalidAttackError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Attack {
    kind: AttackKind,
    field: TargetField,
}

impl Attack {
    /// Creates an attack, validating the pair against the threat matrix.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidAttackError`] for combinations outside Table I
    /// (e.g. `High`/`Low` on position, `Opposite` on speed).
    pub fn new(kind: AttackKind, field: TargetField) -> Result<Self, InvalidAttackError> {
        let valid = match field {
            TargetField::Position => matches!(
                kind,
                AttackKind::Random
                    | AttackKind::RandomOffset
                    | AttackKind::Constant
                    | AttackKind::ConstantOffset
            ),
            TargetField::Speed
            | TargetField::Acceleration
            | TargetField::YawRate
            | TargetField::HeadingYawRate => matches!(
                kind,
                AttackKind::Random
                    | AttackKind::RandomOffset
                    | AttackKind::Constant
                    | AttackKind::ConstantOffset
                    | AttackKind::High
                    | AttackKind::Low
            ),
            TargetField::Heading => matches!(
                kind,
                AttackKind::Random
                    | AttackKind::RandomOffset
                    | AttackKind::Constant
                    | AttackKind::ConstantOffset
                    | AttackKind::Opposite
                    | AttackKind::Perpendicular
                    | AttackKind::Rotating
            ),
        };
        if valid {
            Ok(Attack { kind, field })
        } else {
            Err(InvalidAttackError { kind, field })
        }
    }

    /// The attack kind.
    pub fn kind(&self) -> AttackKind {
        self.kind
    }

    /// The targeted field(s).
    pub fn field(&self) -> TargetField {
        self.field
    }

    /// The paper's attack name, e.g. `RandomPositionOffset`,
    /// `PlaygroundConstantPosition`, `HighHeadingYawRate`.
    pub fn name(&self) -> String {
        // VASP's naming: "<Kind><Field>" with "Offset" suffixed after the
        // field, and the special "PlaygroundConstantPosition" case.
        if self.kind == AttackKind::Constant && self.field == TargetField::Position {
            return "PlaygroundConstantPosition".to_string();
        }
        let suffix = if self.kind.is_offset() { "Offset" } else { "" };
        format!("{}{}{}", self.kind.label(), self.field.label(), suffix)
    }

    /// Whether this is one of the six advanced multi-field attacks.
    pub fn is_advanced(&self) -> bool {
        self.field == TargetField::HeadingYawRate
    }

    /// The full in-scope catalog: all 35 attacks of Table III, in the
    /// paper's row order (position, speed, acceleration, heading, yaw rate,
    /// heading & yaw rate).
    pub fn catalog() -> Vec<Attack> {
        let mut attacks = Vec::with_capacity(35);
        for field in TargetField::ALL {
            for kind in AttackKind::ALL {
                if let Ok(a) = Attack::new(kind, field) {
                    attacks.push(a);
                }
            }
        }
        attacks
    }

    /// Looks an attack up by its paper name.
    ///
    /// # Examples
    ///
    /// ```
    /// use vehigan_vasp::Attack;
    /// let a = Attack::by_name("HighHeadingYawRate").unwrap();
    /// assert!(a.is_advanced());
    /// assert!(Attack::by_name("WormholePosition").is_none());
    /// ```
    pub fn by_name(name: &str) -> Option<Attack> {
        Self::catalog().into_iter().find(|a| a.name() == name)
    }
}

impl fmt::Display for Attack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalog_has_exactly_35_attacks() {
        assert_eq!(Attack::catalog().len(), 35);
    }

    #[test]
    fn catalog_names_are_unique() {
        let names: HashSet<String> = Attack::catalog().iter().map(Attack::name).collect();
        assert_eq!(names.len(), 35);
    }

    #[test]
    fn catalog_matches_table3_counts_per_field() {
        let catalog = Attack::catalog();
        let count = |f: TargetField| catalog.iter().filter(|a| a.field() == f).count();
        assert_eq!(count(TargetField::Position), 4);
        assert_eq!(count(TargetField::Speed), 6);
        assert_eq!(count(TargetField::Acceleration), 6);
        assert_eq!(count(TargetField::Heading), 7);
        assert_eq!(count(TargetField::YawRate), 6);
        assert_eq!(count(TargetField::HeadingYawRate), 6);
    }

    #[test]
    fn table3_names_all_resolve() {
        let expected = [
            "RandomPosition",
            "RandomPositionOffset",
            "PlaygroundConstantPosition",
            "ConstantPositionOffset",
            "RandomSpeed",
            "RandomSpeedOffset",
            "ConstantSpeed",
            "ConstantSpeedOffset",
            "HighSpeed",
            "LowSpeed",
            "RandomAcceleration",
            "RandomAccelerationOffset",
            "ConstantAcceleration",
            "ConstantAccelerationOffset",
            "HighAcceleration",
            "LowAcceleration",
            "RandomHeading",
            "RandomHeadingOffset",
            "ConstantHeading",
            "ConstantHeadingOffset",
            "OppositeHeading",
            "PerpendicularHeading",
            "RotatingHeading",
            "RandomYawRate",
            "RandomYawRateOffset",
            "ConstantYawRate",
            "ConstantYawRateOffset",
            "HighYawRate",
            "LowYawRate",
            "RandomHeadingYawRate",
            "RandomHeadingYawRateOffset",
            "ConstantHeadingYawRate",
            "ConstantHeadingYawRateOffset",
            "HighHeadingYawRate",
            "LowHeadingYawRate",
        ];
        assert_eq!(expected.len(), 35);
        for name in expected {
            assert!(Attack::by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn invalid_combinations_rejected() {
        assert!(Attack::new(AttackKind::High, TargetField::Position).is_err());
        assert!(Attack::new(AttackKind::Opposite, TargetField::Speed).is_err());
        assert!(Attack::new(AttackKind::Rotating, TargetField::YawRate).is_err());
        assert!(Attack::new(AttackKind::Perpendicular, TargetField::HeadingYawRate).is_err());
    }

    #[test]
    fn advanced_attacks_flagged() {
        let catalog = Attack::catalog();
        let advanced: Vec<_> = catalog.iter().filter(|a| a.is_advanced()).collect();
        assert_eq!(advanced.len(), 6);
        assert!(advanced.iter().all(|a| a.name().contains("HeadingYawRate")));
    }

    #[test]
    fn error_display_mentions_both_parts() {
        let err = Attack::new(AttackKind::Rotating, TargetField::Speed).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("Rotating") && msg.contains("Speed"));
    }
}
