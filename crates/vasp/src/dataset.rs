//! Labelled misbehavior dataset assembly.
//!
//! Mirrors the paper's data generation (§IV-A): benign traces from the
//! traffic simulator plus, per attack, a copy of the fleet in which a
//! fraction of vehicles (paper: 25%) persistently transmit falsified BSMs.

use crate::attack::Attack;
use crate::inject::{inject, AttackParams, AttackPolicy};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use vehigan_sim::VehicleTrace;

/// Configuration for dataset assembly.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DatasetConfig {
    /// Fraction of vehicles that are attackers (paper: 0.25).
    pub malicious_fraction: f64,
    /// Attack transmission policy (paper: persistent).
    pub policy: AttackPolicy,
    /// Falsified value ranges.
    pub params: AttackParams,
    /// Seed for attacker selection and falsified-value sampling.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            malicious_fraction: 0.25,
            policy: AttackPolicy::Persistent,
            params: AttackParams::default(),
            seed: 0,
        }
    }
}

/// One vehicle's labelled message stream.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledTrace {
    /// The messages as the MBDS receives them.
    pub trace: VehicleTrace,
    /// Per-message misbehavior ground truth.
    pub labels: Vec<bool>,
    /// Whether this vehicle is an attacker.
    pub is_attacker: bool,
}

/// A full labelled dataset for one scenario (benign or one attack type).
#[derive(Debug, Clone, PartialEq)]
pub struct MisbehaviorDataset {
    /// The attack applied, or `None` for the benign dataset.
    pub attack: Option<Attack>,
    /// Per-vehicle labelled traces.
    pub traces: Vec<LabeledTrace>,
}

impl MisbehaviorDataset {
    /// Total message count.
    pub fn num_messages(&self) -> usize {
        self.traces.iter().map(|t| t.trace.len()).sum()
    }

    /// Number of attacker vehicles.
    pub fn num_attackers(&self) -> usize {
        self.traces.iter().filter(|t| t.is_attacker).count()
    }
}

/// Builds benign and per-attack datasets from a fleet of benign traces.
///
/// # Examples
///
/// ```
/// use vehigan_sim::{SimConfig, TrafficSimulator};
/// use vehigan_vasp::{Attack, DatasetBuilder, DatasetConfig};
///
/// let traces = TrafficSimulator::new(SimConfig::quick_test()).run();
/// let builder = DatasetBuilder::new(&traces, DatasetConfig::default());
/// let ds = builder.attack_dataset(Attack::by_name("HighSpeed").unwrap());
/// assert!(ds.num_attackers() >= 1);
/// ```
#[derive(Debug)]
pub struct DatasetBuilder<'a> {
    benign: &'a [VehicleTrace],
    config: DatasetConfig,
}

impl<'a> DatasetBuilder<'a> {
    /// Creates a builder over a benign fleet.
    ///
    /// # Panics
    ///
    /// Panics if the fleet is empty or the malicious fraction is outside
    /// `(0, 1)`.
    pub fn new(benign: &'a [VehicleTrace], config: DatasetConfig) -> Self {
        assert!(!benign.is_empty(), "need at least one benign trace");
        assert!(
            config.malicious_fraction > 0.0 && config.malicious_fraction < 1.0,
            "malicious fraction must be in (0, 1)"
        );
        DatasetBuilder { benign, config }
    }

    /// The fully benign dataset (labels all `false`).
    pub fn benign_dataset(&self) -> MisbehaviorDataset {
        MisbehaviorDataset {
            attack: None,
            traces: self
                .benign
                .iter()
                .map(|t| LabeledTrace {
                    labels: vec![false; t.len()],
                    trace: t.clone(),
                    is_attacker: false,
                })
                .collect(),
        }
    }

    /// Only the attacked traces of [`Self::attack_dataset`], keyed by
    /// fleet index and sorted by it.
    ///
    /// Drives the exact RNG stream `attack_dataset` uses (selection
    /// shuffle, then per-attacker injection in ascending fleet order), so
    /// splicing these traces over the benign fleet reproduces
    /// `attack_dataset` bit for bit. The campaign evaluation plane relies
    /// on this to rebuild only the ~25% attacker slice per attack while
    /// sharing the benign 75% across all 35 datasets.
    pub fn attacker_traces(&self, attack: Attack) -> Vec<(usize, LabeledTrace)> {
        let attack_salt = attack
            .name()
            .bytes()
            .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ attack_salt);
        let n = self.benign.len();
        let n_attackers = ((n as f64 * self.config.malicious_fraction).round() as usize)
            .clamp(1, n.saturating_sub(1).max(1));
        let mut indices: Vec<usize> = (0..n).collect();
        indices.shuffle(&mut rng);
        let mut attacker_indices: Vec<usize> = indices.into_iter().take(n_attackers).collect();
        // Injection must consume the RNG in ascending fleet order — the
        // stream contract the monolithic builder established.
        attacker_indices.sort_unstable();

        attacker_indices
            .into_iter()
            .map(|i| {
                let attacked = inject(
                    &self.benign[i],
                    attack,
                    self.config.policy,
                    &self.config.params,
                    &mut rng,
                );
                (
                    i,
                    LabeledTrace {
                        trace: attacked.trace,
                        labels: attacked.labels,
                        is_attacker: true,
                    },
                )
            })
            .collect()
    }

    /// A dataset where a `malicious_fraction` of vehicles run `attack`.
    ///
    /// Attacker selection is deterministic in `(config.seed, attack)` so
    /// different attacks pick (mostly) different vehicle subsets, like
    /// separate VASP runs.
    pub fn attack_dataset(&self, attack: Attack) -> MisbehaviorDataset {
        let mut attackers = self.attacker_traces(attack).into_iter().peekable();
        let traces = self
            .benign
            .iter()
            .enumerate()
            .map(|(i, t)| {
                if attackers.peek().is_some_and(|&(j, _)| j == i) {
                    attackers.next().expect("peeked").1
                } else {
                    LabeledTrace {
                        labels: vec![false; t.len()],
                        trace: t.clone(),
                        is_attacker: false,
                    }
                }
            })
            .collect();
        MisbehaviorDataset {
            attack: Some(attack),
            traces,
        }
    }

    /// Datasets for every attack in the Table III catalog.
    pub fn full_campaign(&self) -> Vec<MisbehaviorDataset> {
        Attack::catalog()
            .into_iter()
            .map(|a| self.attack_dataset(a))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vehigan_sim::{SimConfig, TrafficSimulator};

    fn fleet() -> Vec<VehicleTrace> {
        TrafficSimulator::new(SimConfig {
            n_vehicles: 8,
            duration_s: 40.0,
            seed: 5,
            ..SimConfig::default()
        })
        .run()
    }

    #[test]
    fn benign_dataset_has_no_positive_labels() {
        let traces = fleet();
        let ds = DatasetBuilder::new(&traces, DatasetConfig::default()).benign_dataset();
        assert!(ds.attack.is_none());
        assert!(ds.traces.iter().all(|t| t.labels.iter().all(|&l| !l)));
        assert_eq!(ds.num_attackers(), 0);
    }

    #[test]
    fn attacker_fraction_respected() {
        let traces = fleet();
        let ds = DatasetBuilder::new(&traces, DatasetConfig::default())
            .attack_dataset(Attack::by_name("RandomSpeed").unwrap());
        assert_eq!(ds.num_attackers(), 2); // 25% of 8
    }

    #[test]
    fn attacker_traces_are_labelled() {
        let traces = fleet();
        let ds = DatasetBuilder::new(&traces, DatasetConfig::default())
            .attack_dataset(Attack::by_name("HighSpeed").unwrap());
        for t in &ds.traces {
            if t.is_attacker {
                assert!(t.labels.iter().all(|&l| l)); // persistent policy
            } else {
                assert!(t.labels.iter().all(|&l| !l));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let traces = fleet();
        let attack = Attack::by_name("RandomHeading").unwrap();
        let a = DatasetBuilder::new(&traces, DatasetConfig::default()).attack_dataset(attack);
        let b = DatasetBuilder::new(&traces, DatasetConfig::default()).attack_dataset(attack);
        assert_eq!(a, b);
    }

    #[test]
    fn different_attacks_pick_different_attackers_sometimes() {
        let traces = fleet();
        let builder = DatasetBuilder::new(&traces, DatasetConfig::default());
        let sets: Vec<Vec<bool>> = Attack::catalog()
            .iter()
            .take(6)
            .map(|&a| {
                builder
                    .attack_dataset(a)
                    .traces
                    .iter()
                    .map(|t| t.is_attacker)
                    .collect()
            })
            .collect();
        assert!(sets.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn attacker_traces_preserve_the_monolithic_rng_stream() {
        // Reimplements the pre-refactor attack_dataset (one RNG, shuffle
        // then inject-on-the-fly in fleet order) and checks the staged
        // attacker_traces/splice path reproduces it bit for bit.
        let traces = fleet();
        let config = DatasetConfig::default();
        let attack = Attack::by_name("RandomPosition").unwrap();
        let attack_salt = attack
            .name()
            .bytes()
            .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
        let mut rng = StdRng::seed_from_u64(config.seed ^ attack_salt);
        let n = traces.len();
        let n_attackers = ((n as f64 * config.malicious_fraction).round() as usize)
            .clamp(1, n.saturating_sub(1).max(1));
        let mut indices: Vec<usize> = (0..n).collect();
        indices.shuffle(&mut rng);
        let attacker_set: std::collections::HashSet<usize> =
            indices.into_iter().take(n_attackers).collect();
        let expected: Vec<LabeledTrace> = traces
            .iter()
            .enumerate()
            .map(|(i, t)| {
                if attacker_set.contains(&i) {
                    let attacked = inject(t, attack, config.policy, &config.params, &mut rng);
                    LabeledTrace {
                        trace: attacked.trace,
                        labels: attacked.labels,
                        is_attacker: true,
                    }
                } else {
                    LabeledTrace {
                        labels: vec![false; t.len()],
                        trace: t.clone(),
                        is_attacker: false,
                    }
                }
            })
            .collect();

        let ds = DatasetBuilder::new(&traces, config.clone()).attack_dataset(attack);
        assert_eq!(ds.traces, expected);

        let staged = DatasetBuilder::new(&traces, config).attacker_traces(attack);
        assert_eq!(staged.len(), n_attackers);
        for (i, t) in &staged {
            assert_eq!(&expected[*i], t);
        }
    }

    #[test]
    fn full_campaign_covers_catalog() {
        let traces = fleet();
        let campaign = DatasetBuilder::new(&traces, DatasetConfig::default()).full_campaign();
        assert_eq!(campaign.len(), 35);
        assert!(campaign.iter().all(|d| d.attack.is_some()));
    }
}
