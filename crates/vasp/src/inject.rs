//! Attack injection: falsifying benign BSM streams per the Table I matrix.

use crate::attack::{Attack, AttackKind, TargetField};
use rand::rngs::StdRng;
use rand::Rng;
use vehigan_sim::{Bsm, VehicleTrace, BSM_INTERVAL_S};

/// When the attacker transmits falsified messages.
///
/// The paper's dataset uses the *persistent* policy (§IV-A): the attacker
/// always transmits attack messages.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum AttackPolicy {
    /// Every message is falsified.
    Persistent,
    /// Falsify for `duty · period_s` seconds out of every `period_s`.
    Intermittent {
        /// Cycle period in seconds.
        period_s: f64,
        /// Fraction of the cycle spent attacking, in `(0, 1)`.
        duty: f64,
    },
    /// Behave honestly for `start_s` seconds, then attack persistently —
    /// VASP's delayed-start policy, modelling a sleeper insider.
    Delayed {
        /// Seconds of honest behaviour before the attack starts.
        start_s: f64,
    },
}

impl AttackPolicy {
    /// Whether the attack is active at `elapsed` seconds since trace start.
    pub fn is_active(&self, elapsed: f64) -> bool {
        match *self {
            AttackPolicy::Persistent => true,
            AttackPolicy::Intermittent { period_s, duty } => {
                let phase = elapsed.rem_euclid(period_s);
                phase < duty * period_s
            }
            AttackPolicy::Delayed { start_s } => elapsed >= start_s,
        }
    }
}

/// Value ranges for falsified fields.
///
/// Defaults follow VASP's spirit: "random" values span the plausible
/// playground, "high"/"low" values are physically extreme, offsets are
/// large enough to matter but not absurd.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AttackParams {
    /// Playground (simulation area) bounds for random/constant positions:
    /// `(min_x, max_x, min_y, max_y)`.
    pub playground: (f64, f64, f64, f64),
    /// Position offset magnitude range (m).
    pub pos_offset: (f64, f64),
    /// Random speed range (m/s).
    pub speed_range: (f64, f64),
    /// Speed offset magnitude range (m/s).
    pub speed_offset: (f64, f64),
    /// High speed range (m/s).
    pub speed_high: (f64, f64),
    /// Low speed range (m/s).
    pub speed_low: (f64, f64),
    /// Random acceleration range (m/s²).
    pub accel_range: (f64, f64),
    /// Acceleration offset magnitude range (m/s²).
    pub accel_offset: (f64, f64),
    /// High acceleration range (m/s²).
    pub accel_high: (f64, f64),
    /// Low acceleration range (m/s²).
    pub accel_low: (f64, f64),
    /// Heading offset magnitude range (rad).
    pub heading_offset: (f64, f64),
    /// Rotating-heading rate range (rad/s).
    pub rotate_rate: (f64, f64),
    /// Random yaw-rate range (rad/s).
    pub yaw_range: (f64, f64),
    /// Yaw-rate offset magnitude range (rad/s).
    pub yaw_offset: (f64, f64),
    /// High yaw-rate range (rad/s).
    pub yaw_high: (f64, f64),
    /// Low yaw-rate range (rad/s).
    pub yaw_low: (f64, f64),
    /// High coupled heading-rotation rate (rad/s) for HighHeadingYawRate.
    pub coupled_high_rate: (f64, f64),
    /// Low coupled heading-rotation rate (rad/s) for LowHeadingYawRate.
    pub coupled_low_rate: (f64, f64),
}

impl Default for AttackParams {
    fn default() -> Self {
        AttackParams {
            playground: (0.0, 1000.0, 0.0, 1000.0),
            pos_offset: (20.0, 150.0),
            speed_range: (0.0, 40.0),
            speed_offset: (2.0, 10.0),
            speed_high: (45.0, 70.0),
            speed_low: (0.0, 0.5),
            accel_range: (-10.0, 10.0),
            accel_offset: (1.0, 5.0),
            accel_high: (10.0, 20.0),
            accel_low: (-20.0, -10.0),
            heading_offset: (0.5, std::f64::consts::PI),
            rotate_rate: (0.2, 1.0),
            yaw_range: (-2.0, 2.0),
            yaw_offset: (0.1, 1.0),
            yaw_high: (2.0, 4.0),
            yaw_low: (-4.0, -2.0),
            coupled_high_rate: (1.0, 2.0),
            coupled_low_rate: (0.01, 0.05),
        }
    }
}

fn sample(range: (f64, f64), rng: &mut StdRng) -> f64 {
    if range.0 == range.1 {
        range.0
    } else {
        rng.gen_range(range.0..range.1)
    }
}

/// Magnitude sampled from `range` with a random sign.
fn sample_signed(range: (f64, f64), rng: &mut StdRng) -> f64 {
    let mag = sample(range, rng);
    if rng.gen_bool(0.5) {
        mag
    } else {
        -mag
    }
}

/// Per-attacker constants sampled once (Table I "Constant"/offset rows and
/// the rotation rates).
#[derive(Debug, Clone)]
struct InjectorState {
    const_pos: (f64, f64),
    const_pos_offset: (f64, f64),
    const_speed: f64,
    const_speed_offset: f64,
    const_accel: f64,
    const_accel_offset: f64,
    const_heading: f64,
    const_heading_offset: f64,
    const_yaw: f64,
    const_yaw_offset: f64,
    rotate_rate: f64,
    coupled_rate: f64,
}

impl InjectorState {
    fn sample(params: &AttackParams, rng: &mut StdRng) -> Self {
        let (x0, x1, y0, y1) = params.playground;
        InjectorState {
            const_pos: (rng.gen_range(x0..x1), rng.gen_range(y0..y1)),
            const_pos_offset: (
                sample_signed(params.pos_offset, rng),
                sample_signed(params.pos_offset, rng),
            ),
            const_speed: sample(params.speed_range, rng),
            const_speed_offset: sample_signed(params.speed_offset, rng),
            const_accel: sample(params.accel_range, rng),
            const_accel_offset: sample_signed(params.accel_offset, rng),
            const_heading: rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI),
            const_heading_offset: sample_signed(params.heading_offset, rng),
            const_yaw: sample(params.yaw_range, rng),
            const_yaw_offset: sample_signed(params.yaw_offset, rng),
            rotate_rate: sample_signed(params.rotate_rate, rng),
            coupled_rate: sample_signed(params.coupled_high_rate, rng),
        }
    }
}

/// A falsified trace: the transmitted BSMs plus per-message ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackedTrace {
    /// The messages as received by the MBDS (falsified where active).
    pub trace: VehicleTrace,
    /// `labels[i]` is `true` iff message `i` was falsified.
    pub labels: Vec<bool>,
    /// The attack that was applied.
    pub attack: Attack,
}

impl AttackedTrace {
    /// Number of falsified messages.
    pub fn num_malicious(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }
}

/// Applies `attack` to a benign trace under `policy`.
///
/// Per-attacker constants (constant values, offsets, rotation rates) are
/// sampled from `rng` once per call, so distinct attackers falsify
/// differently, matching VASP.
///
/// # Panics
///
/// Panics if the trace is empty.
pub fn inject(
    benign: &VehicleTrace,
    attack: Attack,
    policy: AttackPolicy,
    params: &AttackParams,
    rng: &mut StdRng,
) -> AttackedTrace {
    assert!(!benign.is_empty(), "cannot attack an empty trace");
    let state = InjectorState::sample(params, rng);
    let t0 = benign.bsms[0].timestamp;
    let mut out = VehicleTrace::new(benign.id);
    let mut labels = Vec::with_capacity(benign.len());
    // Previous *transmitted* heading, for coherent coupled yaw rates.
    let mut prev_tx_heading: Option<f64> = None;

    for bsm in benign {
        let elapsed = bsm.timestamp - t0;
        let active = policy.is_active(elapsed);
        let mut tx = *bsm;
        if active {
            falsify(
                &mut tx,
                attack,
                &state,
                params,
                elapsed,
                prev_tx_heading,
                rng,
            );
        }
        prev_tx_heading = Some(tx.heading);
        labels.push(active);
        out.bsms.push(tx);
    }
    AttackedTrace {
        trace: out,
        labels,
        attack,
    }
}

#[allow(clippy::too_many_arguments)]
fn falsify(
    bsm: &mut Bsm,
    attack: Attack,
    state: &InjectorState,
    params: &AttackParams,
    elapsed: f64,
    prev_tx_heading: Option<f64>,
    rng: &mut StdRng,
) {
    use AttackKind as K;
    use TargetField as F;
    let (x0, x1, y0, y1) = params.playground;
    match (attack.field(), attack.kind()) {
        (F::Position, K::Random) => {
            bsm.pos_x = rng.gen_range(x0..x1);
            bsm.pos_y = rng.gen_range(y0..y1);
        }
        (F::Position, K::RandomOffset) => {
            bsm.pos_x += sample_signed(params.pos_offset, rng);
            bsm.pos_y += sample_signed(params.pos_offset, rng);
        }
        (F::Position, K::Constant) => {
            bsm.pos_x = state.const_pos.0;
            bsm.pos_y = state.const_pos.1;
        }
        (F::Position, K::ConstantOffset) => {
            bsm.pos_x += state.const_pos_offset.0;
            bsm.pos_y += state.const_pos_offset.1;
        }
        (F::Speed, K::Random) => bsm.speed = sample(params.speed_range, rng),
        (F::Speed, K::RandomOffset) => {
            bsm.speed = (bsm.speed + sample_signed(params.speed_offset, rng)).max(0.0)
        }
        (F::Speed, K::Constant) => bsm.speed = state.const_speed,
        (F::Speed, K::ConstantOffset) => {
            bsm.speed = (bsm.speed + state.const_speed_offset).max(0.0)
        }
        (F::Speed, K::High) => bsm.speed = sample(params.speed_high, rng),
        (F::Speed, K::Low) => bsm.speed = sample(params.speed_low, rng),
        (F::Acceleration, K::Random) => bsm.acceleration = sample(params.accel_range, rng),
        (F::Acceleration, K::RandomOffset) => {
            bsm.acceleration += sample_signed(params.accel_offset, rng)
        }
        (F::Acceleration, K::Constant) => bsm.acceleration = state.const_accel,
        (F::Acceleration, K::ConstantOffset) => bsm.acceleration += state.const_accel_offset,
        (F::Acceleration, K::High) => bsm.acceleration = sample(params.accel_high, rng),
        (F::Acceleration, K::Low) => bsm.acceleration = sample(params.accel_low, rng),
        (F::Heading, K::Random) => {
            bsm.heading = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI)
        }
        (F::Heading, K::RandomOffset) => {
            bsm.heading =
                Bsm::normalize_angle(bsm.heading + sample_signed(params.heading_offset, rng))
        }
        (F::Heading, K::Constant) => bsm.heading = state.const_heading,
        (F::Heading, K::ConstantOffset) => {
            bsm.heading = Bsm::normalize_angle(bsm.heading + state.const_heading_offset)
        }
        (F::Heading, K::Opposite) => {
            bsm.heading = Bsm::normalize_angle(bsm.heading + std::f64::consts::PI)
        }
        (F::Heading, K::Perpendicular) => {
            bsm.heading = Bsm::normalize_angle(bsm.heading + std::f64::consts::FRAC_PI_2)
        }
        (F::Heading, K::Rotating) => {
            bsm.heading = Bsm::normalize_angle(state.const_heading + state.rotate_rate * elapsed)
        }
        (F::YawRate, K::Random) => bsm.yaw_rate = sample(params.yaw_range, rng),
        (F::YawRate, K::RandomOffset) => bsm.yaw_rate += sample_signed(params.yaw_offset, rng),
        (F::YawRate, K::Constant) => bsm.yaw_rate = state.const_yaw,
        (F::YawRate, K::ConstantOffset) => bsm.yaw_rate += state.const_yaw_offset,
        (F::YawRate, K::High) => bsm.yaw_rate = sample(params.yaw_high, rng),
        (F::YawRate, K::Low) => bsm.yaw_rate = sample(params.yaw_low, rng),
        (F::HeadingYawRate, kind) => {
            coupled_heading_yaw(bsm, kind, state, params, elapsed, prev_tx_heading, rng)
        }
        _ => unreachable!("Attack::new validated the matrix"),
    }
}

/// The advanced attacks: falsify heading and set yaw rate to the *actual*
/// derivative of the falsified heading sequence, replicating a coherent
/// (but fake) maneuver, e.g. staging a sharp turn (Fig 1b).
fn coupled_heading_yaw(
    bsm: &mut Bsm,
    kind: AttackKind,
    state: &InjectorState,
    params: &AttackParams,
    elapsed: f64,
    prev_tx_heading: Option<f64>,
    rng: &mut StdRng,
) {
    let new_heading = match kind {
        AttackKind::Random => rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI),
        AttackKind::RandomOffset => {
            Bsm::normalize_angle(bsm.heading + sample_signed(params.heading_offset, rng))
        }
        AttackKind::Constant => state.const_heading,
        AttackKind::ConstantOffset => {
            Bsm::normalize_angle(bsm.heading + state.const_heading_offset)
        }
        AttackKind::High => {
            Bsm::normalize_angle(state.const_heading + state.coupled_rate * elapsed)
        }
        AttackKind::Low => {
            let rate = state.coupled_rate.signum()
                * (params.coupled_low_rate.0
                    + (state.coupled_rate.abs() - params.coupled_high_rate.0).abs()
                        % (params.coupled_low_rate.1 - params.coupled_low_rate.0));
            Bsm::normalize_angle(state.const_heading + rate * elapsed)
        }
        _ => unreachable!("matrix excludes other kinds for HeadingYawRate"),
    };
    // Coherent yaw rate: the discrete derivative of the transmitted heading.
    bsm.yaw_rate = match prev_tx_heading {
        Some(prev) => Bsm::normalize_angle(new_heading - prev) / BSM_INTERVAL_S,
        None => match kind {
            AttackKind::High | AttackKind::Low => state.coupled_rate,
            AttackKind::Constant => 0.0,
            _ => bsm.yaw_rate,
        },
    };
    bsm.heading = new_heading;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vehigan_sim::{SensorModel, SimConfig, TrafficSimulator};

    fn benign_trace() -> VehicleTrace {
        let config = SimConfig {
            n_vehicles: 1,
            duration_s: 60.0,
            seed: 3,
            sensor: SensorModel::noiseless(),
            ..SimConfig::default()
        };
        TrafficSimulator::new(config).run().remove(0)
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    fn run(attack: Attack) -> (VehicleTrace, AttackedTrace) {
        let benign = benign_trace();
        let attacked = inject(
            &benign,
            attack,
            AttackPolicy::Persistent,
            &AttackParams::default(),
            &mut rng(),
        );
        (benign, attacked)
    }

    #[test]
    fn persistent_policy_falsifies_everything() {
        let attack = Attack::by_name("RandomSpeed").unwrap();
        let (benign, attacked) = run(attack);
        assert_eq!(attacked.num_malicious(), benign.len());
    }

    #[test]
    fn intermittent_policy_alternates() {
        let benign = benign_trace();
        let attacked = inject(
            &benign,
            Attack::by_name("RandomSpeed").unwrap(),
            AttackPolicy::Intermittent {
                period_s: 10.0,
                duty: 0.5,
            },
            &AttackParams::default(),
            &mut rng(),
        );
        let m = attacked.num_malicious();
        assert!(m > benign.len() / 4 && m < 3 * benign.len() / 4, "m={m}");
        // Labels must alternate in runs, not per message.
        let transitions = attacked.labels.windows(2).filter(|w| w[0] != w[1]).count();
        assert!((2..20).contains(&transitions));
    }

    #[test]
    fn delayed_policy_starts_clean_then_attacks() {
        let benign = benign_trace();
        let attacked = inject(
            &benign,
            Attack::by_name("RandomSpeed").unwrap(),
            AttackPolicy::Delayed { start_s: 20.0 },
            &AttackParams::default(),
            &mut rng(),
        );
        let t0 = benign.bsms[0].timestamp;
        for ((bsm, &label), orig) in attacked.trace.iter().zip(&attacked.labels).zip(&benign) {
            let elapsed = bsm.timestamp - t0;
            assert_eq!(label, elapsed >= 20.0, "elapsed={elapsed}");
            if !label {
                assert_eq!(bsm, orig);
            }
        }
        assert!(attacked.num_malicious() > 0);
        assert!(attacked.num_malicious() < benign.len());
    }

    #[test]
    fn non_targeted_fields_untouched() {
        let (benign, attacked) = run(Attack::by_name("RandomSpeed").unwrap());
        for (b, a) in benign.iter().zip(&attacked.trace) {
            assert_eq!(b.pos_x, a.pos_x);
            assert_eq!(b.heading, a.heading);
            assert_eq!(b.yaw_rate, a.yaw_rate);
            assert_eq!(b.acceleration, a.acceleration);
        }
    }

    #[test]
    fn constant_position_is_constant() {
        let (_, attacked) = run(Attack::by_name("PlaygroundConstantPosition").unwrap());
        let first = &attacked.trace.bsms[0];
        for b in &attacked.trace {
            assert_eq!((b.pos_x, b.pos_y), (first.pos_x, first.pos_y));
        }
    }

    #[test]
    fn constant_offset_position_preserves_shape() {
        let (benign, attacked) = run(Attack::by_name("ConstantPositionOffset").unwrap());
        let dx0 = attacked.trace.bsms[0].pos_x - benign.bsms[0].pos_x;
        let dy0 = attacked.trace.bsms[0].pos_y - benign.bsms[0].pos_y;
        assert!(dx0.abs() >= 20.0 || dy0.abs() >= 20.0);
        for (b, a) in benign.iter().zip(&attacked.trace) {
            assert!((a.pos_x - b.pos_x - dx0).abs() < 1e-9);
            assert!((a.pos_y - b.pos_y - dy0).abs() < 1e-9);
        }
    }

    #[test]
    fn high_speed_is_extreme() {
        let (_, attacked) = run(Attack::by_name("HighSpeed").unwrap());
        assert!(attacked.trace.iter().all(|b| b.speed >= 45.0));
    }

    #[test]
    fn low_speed_is_near_zero() {
        let (_, attacked) = run(Attack::by_name("LowSpeed").unwrap());
        assert!(attacked.trace.iter().all(|b| b.speed <= 0.5));
    }

    #[test]
    fn opposite_heading_flips() {
        let (benign, attacked) = run(Attack::by_name("OppositeHeading").unwrap());
        for (b, a) in benign.iter().zip(&attacked.trace) {
            let diff = Bsm::normalize_angle(a.heading - b.heading).abs();
            assert!((diff - std::f64::consts::PI).abs() < 1e-9);
        }
    }

    #[test]
    fn perpendicular_heading_rotates_quarter() {
        let (benign, attacked) = run(Attack::by_name("PerpendicularHeading").unwrap());
        for (b, a) in benign.iter().zip(&attacked.trace) {
            let diff = Bsm::normalize_angle(a.heading - b.heading).abs();
            assert!((diff - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
        }
    }

    #[test]
    fn rotating_heading_rotates_linearly() {
        let (_, attacked) = run(Attack::by_name("RotatingHeading").unwrap());
        let bsms = &attacked.trace.bsms;
        // Consecutive heading deltas must be constant (the rotation rate).
        let d0 = Bsm::normalize_angle(bsms[1].heading - bsms[0].heading);
        for w in bsms.windows(2) {
            let d = Bsm::normalize_angle(w[1].heading - w[0].heading);
            assert!((d - d0).abs() < 1e-9);
        }
        assert!(d0.abs() > 0.01); // actually rotating
    }

    #[test]
    fn coupled_high_attack_is_coherent() {
        // The advanced attack's signature: transmitted yaw rate equals the
        // discrete derivative of the transmitted heading.
        let (_, attacked) = run(Attack::by_name("HighHeadingYawRate").unwrap());
        let bsms = &attacked.trace.bsms;
        for w in bsms.windows(2) {
            let dh = Bsm::normalize_angle(w[1].heading - w[0].heading) / BSM_INTERVAL_S;
            assert!(
                (dh - w[1].yaw_rate).abs() < 1e-6,
                "dh={dh} yaw={}",
                w[1].yaw_rate
            );
        }
        // And the rate is high.
        assert!(bsms[5].yaw_rate.abs() >= 1.0);
    }

    #[test]
    fn coupled_constant_attack_has_zero_yaw() {
        let (_, attacked) = run(Attack::by_name("ConstantHeadingYawRate").unwrap());
        for b in attacked.trace.iter().skip(1) {
            assert!(b.yaw_rate.abs() < 1e-9);
        }
    }

    #[test]
    fn coupled_random_attack_yaw_matches_heading_derivative() {
        let (_, attacked) = run(Attack::by_name("RandomHeadingYawRate").unwrap());
        let bsms = &attacked.trace.bsms;
        for w in bsms.windows(2) {
            let dh = Bsm::normalize_angle(w[1].heading - w[0].heading) / BSM_INTERVAL_S;
            assert!((dh - w[1].yaw_rate).abs() < 1e-6);
        }
    }

    #[test]
    fn different_attackers_get_different_constants() {
        let benign = benign_trace();
        let attack = Attack::by_name("ConstantSpeed").unwrap();
        let mut r = rng();
        let a = inject(
            &benign,
            attack,
            AttackPolicy::Persistent,
            &AttackParams::default(),
            &mut r,
        );
        let b = inject(
            &benign,
            attack,
            AttackPolicy::Persistent,
            &AttackParams::default(),
            &mut r,
        );
        assert_ne!(a.trace.bsms[0].speed, b.trace.bsms[0].speed);
    }

    #[test]
    fn all_35_attacks_inject_without_panic_and_change_something() {
        let benign = benign_trace();
        let mut r = rng();
        for attack in Attack::catalog() {
            let attacked = inject(
                &benign,
                attack,
                AttackPolicy::Persistent,
                &AttackParams::default(),
                &mut r,
            );
            assert_eq!(attacked.trace.len(), benign.len(), "{attack}");
            let changed = benign.iter().zip(&attacked.trace).any(|(b, a)| b != a);
            assert!(changed, "attack {attack} changed nothing");
        }
    }
}
