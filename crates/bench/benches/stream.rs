//! Criterion benches for the streaming serve data plane: gated batched
//! two-tier scoring vs the naive per-window f32 path, on one tick's
//! worth of city traffic.
//!
//! Run with `cargo bench -p vehigan-bench --bench stream`. The
//! JSON-emitting city-scale variant (10k vehicles, in-binary acceptance
//! gates) is `vehigan-bench stream`, which writes
//! `results/BENCH_stream.json`.
//!
//! The system is trained once at tiny scale; each iteration replays the
//! same pre-generated BSM slice through a fresh server (or tracker), so
//! the measured work is ingest + window refresh + scoring, not training.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vehigan_core::{Pipeline, PipelineConfig};
use vehigan_features::StreamTracker;
use vehigan_serve::{escalation_threshold, EscalationPolicy, ServerConfig, StreamServer};
use vehigan_sim::{Bsm, SimConfig, TrafficSimulator};

fn bench_stream(c: &mut Criterion) {
    let mut p = Pipeline::run(PipelineConfig::tiny());
    p.compile_int8().expect("int8 backend compiles");
    let k = p.vehigan.k();
    let members: Vec<usize> = (0..k).collect();

    // 64 vehicles x 3 s of traffic: enough completed windows per replay
    // to amortize per-call overhead, small enough for criterion's budget.
    let fleet = TrafficSimulator::new(SimConfig {
        n_vehicles: 64,
        duration_s: 3.0,
        seed: 9,
        ..SimConfig::default()
    })
    .run();
    let mut stream: Vec<Bsm> = fleet.iter().flat_map(|t| t.bsms.iter().copied()).collect();
    stream.sort_by(|a, b| {
        a.timestamp
            .partial_cmp(&b.timestamp)
            .unwrap()
            .then(a.vehicle_id.cmp(&b.vehicle_id))
    });

    // Calibrate the escalation cutoff on the training windows' gate view.
    let gate_members = members.clone();
    let gate = p
        .vehigan
        .score_with_members_int8(&gate_members, &p.train_windows.x)
        .unwrap();
    let tau_esc = escalation_threshold(&gate.scores, 90.0);

    let mut group = c.benchmark_group("stream");
    group.bench_function("gated_serve_64v", |bch| {
        bch.iter(|| {
            let mut server = StreamServer::new(
                &p.vehigan,
                p.scaler.clone(),
                ServerConfig {
                    n_shards: 4,
                    policy: EscalationPolicy::Threshold(tau_esc),
                    members: Some(members.clone()),
                    gate_members: Some(gate_members.clone()),
                    ..ServerConfig::default()
                },
            )
            .unwrap();
            let mut decisions = 0usize;
            for chunk in stream.chunks(64) {
                server.ingest_batch(chunk);
                decisions += server.tick().unwrap().len();
            }
            black_box(decisions)
        });
    });
    group.bench_function("tier2_serve_64v", |bch| {
        bch.iter(|| {
            let mut server = StreamServer::new(
                &p.vehigan,
                p.scaler.clone(),
                ServerConfig {
                    n_shards: 4,
                    policy: EscalationPolicy::Always,
                    members: Some(members.clone()),
                    ..ServerConfig::default()
                },
            )
            .unwrap();
            let mut decisions = 0usize;
            for chunk in stream.chunks(64) {
                server.ingest_batch(chunk);
                decisions += server.tick().unwrap().len();
            }
            black_box(decisions)
        });
    });
    group.bench_function("naive_per_window_64v", |bch| {
        bch.iter(|| {
            let mut tracker = StreamTracker::new(10, p.scaler.clone());
            let mut windows = 0usize;
            for bsm in &stream {
                if let Some(snapshot) = tracker.push(bsm) {
                    p.vehigan.score_with_members(&members, snapshot).unwrap();
                    windows += 1;
                }
            }
            black_box(windows)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_stream);
criterion_main!(benches);
