//! Criterion benches for the fused int8 ensemble backend.
//!
//! Run with `cargo bench -p vehigan-bench --bench quant`. The quick
//! JSON-emitting variant (on a trained system, with acceptance gates) is
//! `vehigan-bench quant`, which writes `results/BENCH_quant.json`.
//!
//! Groups:
//! - `i8_gemm/*` — the raw i8×i8→i32 kernel on critic shapes, dispatched
//!   vs portable vs naive;
//! - `fused_ensemble/kN` — one snapshot through N paper-depth critics via
//!   the single fused int8 sweep;
//! - `lite_ensemble/kN` — the same N critics walked one-by-one through
//!   `LiteCritic` (the pre-fusion int8 baseline).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vehigan_core::{build_critic, WganConfig};
use vehigan_lite::{Int8Ensemble, LiteCritic};
use vehigan_tensor::gemm::{gemm_i8, gemm_i8_portable, naive_i8, PackedI8};
use vehigan_tensor::init::{rand_uniform, seeded_rng};

fn config(layers: usize) -> WganConfig {
    WganConfig {
        layers,
        ..WganConfig::default()
    }
}

fn fill_i8(mut seed: u32, len: usize) -> Vec<i8> {
    (0..len)
        .map(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 17;
            seed ^= seed << 5;
            (seed % 255) as i8
        })
        .collect()
}

fn bench_i8_gemm(c: &mut Criterion) {
    // The two hot critic shapes: an im2col conv and the final dense.
    for (name, m, k, n) in [
        ("im2col_conv", 120usize, 128usize, 32usize),
        ("final_dense", 1, 3840, 8),
    ] {
        let mut group = c.benchmark_group(format!("i8_gemm/{name}"));
        let a = fill_i8(1, m * k);
        let b = fill_i8(2, k * n);
        let packed = PackedI8::pack(k, n, &b);
        let mut out = vec![0i32; m * n];
        group.bench_function("naive", |bch| {
            bch.iter(|| {
                out.iter_mut().for_each(|v| *v = 0);
                naive_i8(m, k, n, black_box(&a), black_box(&b), &mut out);
                black_box(out[0])
            })
        });
        group.bench_function("portable", |bch| {
            bch.iter(|| {
                out.iter_mut().for_each(|v| *v = 0);
                gemm_i8_portable(m, black_box(&a), black_box(&packed), &mut out);
                black_box(out[0])
            })
        });
        group.bench_function("dispatched", |bch| {
            bch.iter(|| {
                out.iter_mut().for_each(|v| *v = 0);
                gemm_i8(m, black_box(&a), black_box(&packed), &mut out);
                black_box(out[0])
            })
        });
        group.finish();
    }
}

fn bench_fused_ensemble(c: &mut Criterion) {
    let cfg = config(6);
    let shape = (cfg.window, cfg.features, 1);
    let mut rng = seeded_rng(1);
    let calibration = rand_uniform(&[16, cfg.window, cfg.features, 1], -1.0, 1.0, &mut rng);
    let x = rand_uniform(&[1, cfg.window, cfg.features, 1], -1.0, 1.0, &mut rng);
    let flat: Vec<f32> = x.as_slice().to_vec();

    for k in [1usize, 5, 10] {
        let critics: Vec<_> = (0..k)
            .map(|s| build_critic(&cfg, &mut seeded_rng(s as u64)))
            .collect();
        let snaps: Vec<_> = critics.iter().map(|m| m.save()).collect();
        let refs: Vec<&_> = snaps.iter().collect();
        let mut fused =
            Int8Ensemble::compile(&refs, shape, calibration.as_slice()).expect("compiles");
        let subset: Vec<usize> = (0..k).collect();
        let mut scores = vec![0.0f32; k];
        let mut group = c.benchmark_group("fused_ensemble");
        group.bench_function(format!("k{k}"), |b| {
            b.iter(|| {
                fused.score_subset_into(&subset, black_box(&flat), 1, &mut scores);
                black_box(scores[0])
            })
        });
        group.finish();

        // Baseline: the same members walked separately through LiteCritic.
        let mut lites: Vec<LiteCritic> = critics
            .iter()
            .map(|m| LiteCritic::compile(m, shape).expect("compiles"))
            .collect();
        let mut group = c.benchmark_group("lite_ensemble");
        group.bench_function(format!("k{k}"), |b| {
            b.iter(|| {
                let mut sum = 0.0f32;
                for lite in &mut lites {
                    sum += lite.infer(black_box(&flat));
                }
                black_box(sum)
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_i8_gemm, bench_fused_ensemble);
criterion_main!(benches);
