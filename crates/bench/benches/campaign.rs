//! Criterion benches for the campaign data plane: serial monolithic
//! dataset builds vs the cache-aware `CampaignPlane`.
//!
//! Run with `cargo bench -p vehigan-bench --bench campaign`. The quick
//! JSON-emitting variant over the full 35-attack catalog is
//! `vehigan-bench campaign`, which writes `results/BENCH_campaign.json`.
//!
//! The fleet is kept small (16 vehicles, 60 s) so each iteration stays in
//! criterion's measurement budget; the shape of the work — engineer,
//! scale, window every trace per attack vs once per campaign — is the
//! same as at evaluation scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vehigan_bench::experiments::campaign::seed_build_windows;
use vehigan_core::CampaignPlane;
use vehigan_features::{build_windows, fit_scaler, WindowConfig};
use vehigan_sim::{SimConfig, TrafficSimulator};
use vehigan_vasp::{Attack, DatasetBuilder, DatasetConfig};

fn bench_campaign(c: &mut Criterion) {
    let fleet = TrafficSimulator::new(SimConfig {
        n_vehicles: 16,
        duration_s: 60.0,
        seed: 42,
        ..SimConfig::default()
    })
    .run();
    let window = WindowConfig {
        stride: 4,
        ..WindowConfig::default()
    };
    let builder = DatasetBuilder::new(&fleet, DatasetConfig::default());
    let scaler = fit_scaler(&builder.benign_dataset(), window.representation);
    let attacks = Attack::catalog();

    let mut group = c.benchmark_group("campaign");
    // The pre-data-plane builder, reproduced in experiments::campaign.
    group.bench_function("serial_35_attacks", |bch| {
        bch.iter(|| {
            let datasets: Vec<_> = attacks
                .iter()
                .map(|&a| seed_build_windows(&builder.attack_dataset(a), window, &scaler))
                .collect();
            black_box(datasets.len())
        });
    });
    // The staged allocation-free monolithic build, still once per attack.
    group.bench_function("staged_35_attacks", |bch| {
        bch.iter(|| {
            let datasets: Vec<_> = attacks
                .iter()
                .map(|&a| build_windows(&builder.attack_dataset(a), window, &scaler))
                .collect();
            black_box(datasets.len())
        });
    });
    group.bench_function("plane_35_attacks", |bch| {
        bch.iter(|| {
            let plane = CampaignPlane::new(&fleet, DatasetConfig::default(), window, &scaler);
            black_box(plane.campaign(&attacks).len())
        });
    });
    // The steady-state case: the benign cache already exists (one plane
    // serves table3, fig3, fig4, … on the same harness).
    let plane = CampaignPlane::new(&fleet, DatasetConfig::default(), window, &scaler);
    group.bench_function("warm_plane_35_attacks", |bch| {
        bch.iter(|| black_box(plane.campaign(&attacks).len()));
    });
    group.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
