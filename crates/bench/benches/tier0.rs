//! Criterion benches for the tier-0 kinematic monitors: per-BSM update
//! cost and gate evaluation, with a hard <100 ns/BSM assertion on the
//! monitor push (the O(1) budget that makes tier 0 free relative to the
//! int8 ensemble).
//!
//! Run with `cargo bench -p vehigan-bench --bench tier0`. The
//! JSON-emitting city-scale variant (gated vs ungated serve, in-binary
//! acceptance gates) is `vehigan-bench tier0`, which writes
//! `results/BENCH_tier0.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Instant;
use vehigan_features::{Tier0Calibration, Tier0Monitor};
use vehigan_sim::{Bsm, SimConfig, TrafficSimulator};

/// Hard budget for one monitor update. The monitor runs on every
/// accepted BSM in every shard, so it must be vanishingly cheap next to
/// the ~µs-scale int8 window score it lets the server skip.
const MAX_NS_PER_PUSH: f64 = 100.0;

fn bench_tier0(c: &mut Criterion) {
    let fleet = TrafficSimulator::new(SimConfig {
        n_vehicles: 8,
        duration_s: 60.0,
        seed: 13,
        ..SimConfig::default()
    })
    .run();
    let cal = Tier0Calibration::fit(&fleet, 10, 0.995).expect("calibration fits");
    let bsms: Vec<Bsm> = fleet.iter().flat_map(|t| t.bsms.iter().copied()).collect();
    let trace = &fleet[0].bsms;

    // Hard gate first: measure the amortized push cost over every trace
    // (warm, in cache — the serve-shard steady state) and fail the bench
    // run outright if it blows the O(1) budget.
    let mut m = Tier0Monitor::new(cal.params);
    for bsm in trace {
        m.push(bsm); // warm-up
    }
    let reps = 50usize;
    let t0 = Instant::now();
    for _ in 0..reps {
        for t in &fleet {
            let mut m = Tier0Monitor::new(cal.params);
            for bsm in &t.bsms {
                m.push(bsm);
            }
            black_box(m.statistics());
        }
    }
    let ns_per_push = t0.elapsed().as_nanos() as f64 / (reps * bsms.len()) as f64;
    println!("tier0 monitor push: {ns_per_push:.1} ns/BSM (budget {MAX_NS_PER_PUSH})");
    assert!(
        ns_per_push < MAX_NS_PER_PUSH,
        "monitor push {ns_per_push:.1} ns/BSM exceeds the {MAX_NS_PER_PUSH} ns budget"
    );

    let mut group = c.benchmark_group("tier0");
    group.bench_function("monitor_push_per_trace", |bch| {
        bch.iter(|| {
            let mut m = Tier0Monitor::new(cal.params);
            for bsm in trace {
                m.push(bsm);
            }
            black_box(m.statistics())
        });
    });
    group.bench_function("evaluate_warm_monitor", |bch| {
        let mut m = Tier0Monitor::new(cal.params);
        for bsm in trace {
            m.push(bsm);
        }
        bch.iter(|| black_box(cal.evaluate(black_box(&m))));
    });
    group.bench_function("calibration_fit_8v_60s", |bch| {
        bch.iter(|| black_box(Tier0Calibration::fit(black_box(&fleet), 10, 0.995)));
    });
    group.finish();
}

criterion_group!(benches, bench_tier0);
criterion_main!(benches);
