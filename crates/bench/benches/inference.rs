//! Fig 8 Criterion benches: per-snapshot critic inference latency.
//!
//! - `standard/layersN` — the float `Sequential` forward pass (Fig 8a,
//!   the paper's Keras path);
//! - `lite/layersN` — the compiled int8 fused path (Fig 8b, the paper's
//!   TFLite path);
//! - `ensemble/*` — full `VEHIGAN_k` scoring cost (k critics per BSM).
//!
//! All must sit far below the 100 ms BSM transmission interval.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vehigan_core::{build_critic, WganConfig};
use vehigan_lite::LiteCritic;
use vehigan_tensor::init::{rand_uniform, seeded_rng};

fn config(layers: usize) -> WganConfig {
    WganConfig {
        layers,
        ..WganConfig::default()
    }
}

fn bench_standard(c: &mut Criterion) {
    let mut group = c.benchmark_group("standard");
    for layers in [6usize, 7, 8] {
        let cfg = config(layers);
        let mut critic = build_critic(&cfg, &mut seeded_rng(layers as u64));
        let mut rng = seeded_rng(1);
        let x = rand_uniform(&[1, cfg.window, cfg.features, 1], -1.0, 1.0, &mut rng);
        group.bench_function(format!("layers{layers}"), |b| {
            b.iter(|| black_box(critic.forward(black_box(&x))));
        });
    }
    group.finish();
}

fn bench_lite(c: &mut Criterion) {
    let mut group = c.benchmark_group("lite");
    for layers in [6usize, 7, 8] {
        let cfg = config(layers);
        let critic = build_critic(&cfg, &mut seeded_rng(layers as u64));
        let mut lite =
            LiteCritic::compile(&critic, (cfg.window, cfg.features, 1)).expect("critic compiles");
        let mut rng = seeded_rng(1);
        let x = rand_uniform(&[1, cfg.window, cfg.features, 1], -1.0, 1.0, &mut rng);
        let flat: Vec<f32> = x.as_slice().to_vec();
        group.bench_function(format!("layers{layers}"), |b| {
            b.iter(|| black_box(lite.infer(black_box(&flat))));
        });
    }
    group.finish();
}

fn bench_ensemble(c: &mut Criterion) {
    let mut group = c.benchmark_group("ensemble");
    // k lite critics scored sequentially — the OBU worst case without
    // parallel inference (§V-D).
    for k in [1usize, 5, 10] {
        let cfg = config(6);
        let mut lites: Vec<LiteCritic> = (0..k)
            .map(|i| {
                let critic = build_critic(&cfg, &mut seeded_rng(i as u64));
                LiteCritic::compile(&critic, (cfg.window, cfg.features, 1)).expect("compiles")
            })
            .collect();
        let mut rng = seeded_rng(1);
        let x = rand_uniform(&[1, cfg.window, cfg.features, 1], -1.0, 1.0, &mut rng);
        let flat: Vec<f32> = x.as_slice().to_vec();
        group.bench_function(format!("lite_k{k}"), |b| {
            b.iter(|| {
                let mut sum = 0.0f32;
                for lite in &mut lites {
                    sum += lite.score(black_box(&flat));
                }
                black_box(sum / k as f32)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_standard, bench_lite, bench_ensemble);
criterion_main!(benches);
