//! Criterion benches for the blocked GEMM kernels vs the naive reference.
//!
//! Run with `cargo bench -p vehigan-bench --bench gemm`. The quick
//! JSON-emitting variant of the same shapes is `vehigan-bench gemm`,
//! which writes `results/BENCH_gemm.json`.
//!
//! Shapes are the hot ones of the critic at the paper's defaults
//! (10×12 snapshots, batch 128):
//! - `critic_forward/128x120x64` — the final Dense layer (the ISSUE's
//!   ≥3× acceptance shape);
//! - `im2col/15360x32x16` — a critic conv as its im2col product;
//! - `backward/dw_tn` and `backward/dx_nt` — the transpose-free backward
//!   kernels against their transpose-then-multiply baselines.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vehigan_tensor::gemm;

fn fill(mut seed: u32, len: usize) -> Vec<f32> {
    (0..len)
        .map(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 17;
            seed ^= seed << 5;
            (seed as f32 / u32::MAX as f32) - 0.5
        })
        .collect()
}

fn bench_forward(c: &mut Criterion) {
    for (m, k, n) in [(128usize, 120usize, 64usize), (15360, 32, 16)] {
        let mut group = c.benchmark_group(if m == 128 { "critic_forward" } else { "im2col" });
        let a = fill(1, m * k);
        let b = fill(2, k * n);
        let mut out = vec![0.0f32; m * n];
        group.bench_function(format!("{m}x{k}x{n}_naive"), |bch| {
            bch.iter(|| {
                out.iter_mut().for_each(|v| *v = 0.0);
                gemm::naive(m, k, n, black_box(&a), black_box(&b), &mut out);
                black_box(out[0])
            });
        });
        group.bench_function(format!("{m}x{k}x{n}_blocked"), |bch| {
            bch.iter(|| {
                out.iter_mut().for_each(|v| *v = 0.0);
                gemm::gemm(m, k, n, black_box(&a), black_box(&b), &mut out);
                black_box(out[0])
            });
        });
        group.finish();
    }
}

fn bench_backward(c: &mut Criterion) {
    let mut group = c.benchmark_group("backward");
    // dW = Xᵀ·dY for the critic Dense layer: X [128, 120], dY [128, 64].
    let (batch, in_dim, out_dim) = (128usize, 120usize, 64usize);
    let x = fill(3, batch * in_dim);
    let dy = fill(4, batch * out_dim);
    let w = fill(5, in_dim * out_dim);
    let mut dw = vec![0.0f32; in_dim * out_dim];
    let mut dx = vec![0.0f32; batch * in_dim];
    let mut scratch = vec![0.0f32; batch * in_dim.max(out_dim)];
    group.bench_function("dw_transpose_then_naive", |bch| {
        bch.iter(|| {
            gemm::transpose_into(batch, in_dim, black_box(&x), &mut scratch[..batch * in_dim]);
            dw.iter_mut().for_each(|v| *v = 0.0);
            gemm::naive(
                in_dim,
                batch,
                out_dim,
                &scratch[..batch * in_dim],
                black_box(&dy),
                &mut dw,
            );
            black_box(dw[0])
        });
    });
    group.bench_function("dw_tn", |bch| {
        bch.iter(|| {
            dw.iter_mut().for_each(|v| *v = 0.0);
            gemm::gemm_tn(
                in_dim,
                out_dim,
                batch,
                black_box(&x),
                black_box(&dy),
                &mut dw,
            );
            black_box(dw[0])
        });
    });
    group.bench_function("dx_transpose_then_naive", |bch| {
        bch.iter(|| {
            gemm::transpose_into(
                in_dim,
                out_dim,
                black_box(&w),
                &mut scratch[..in_dim * out_dim],
            );
            dx.iter_mut().for_each(|v| *v = 0.0);
            gemm::naive(
                batch,
                out_dim,
                in_dim,
                black_box(&dy),
                &scratch[..in_dim * out_dim],
                &mut dx,
            );
            black_box(dx[0])
        });
    });
    group.bench_function("dx_nt", |bch| {
        bch.iter(|| {
            dx.iter_mut().for_each(|v| *v = 0.0);
            gemm::gemm_nt(
                batch,
                in_dim,
                out_dim,
                black_box(&dy),
                black_box(&w),
                &mut dx,
            );
            black_box(dx[0])
        });
    });
    group.finish();
}

criterion_group!(benches, bench_forward, bench_backward);
criterion_main!(benches);
