//! Experiment runner CLI.
//!
//! ```text
//! vehigan-bench <experiment> [--scale quick|paper] [--resume <dir>]
//!                            [--retry-quarantined] [--stop-after-groups N]
//!                            [--vehicles N] [--duration S]
//! ```
//!
//! Experiments: `authority campaign catalog fig3 fig4 fig5a fig5b fig5c
//! fig6 fig7a fig7b fig8 gemm quant resume slo stream table3 tier0 all`.
//!
//! `--resume <dir>` makes zoo training crash-safe: every finished model is
//! checkpointed in `<dir>` (and the in-flight training group at every
//! epoch boundary), and rerunning the same command after an interruption
//! resumes from the directory's manifest — mid-member when a partial
//! checkpoint exists.
//! `--retry-quarantined` additionally retrains configurations the previous
//! run quarantined, using a fresh derived seed, instead of skipping them.
//! `--stop-after-groups N` halts zoo training cleanly after `N` groups to
//! simulate a kill; the `resume` experiment uses the same machinery to
//! prove kill/resume bitwise equivalence end to end.
//! `--vehicles N` / `--duration S` size the simulated traffic the `stream`
//! and `slo` experiments drive through the serve data plane (defaults:
//! 10000 vehicles, 2.0 s — the committed city-scale configuration; CI
//! smokes a few hundred vehicles; `slo` floors the duration at 4 s so the
//! steady phase is measurable before its overload burst).

use std::path::PathBuf;
use vehigan_bench::experiments::{
    ablation, catalog, fig3, fig4, fig5, fig6, fig7, fig8, resume, table3,
};
use vehigan_bench::harness::{Harness, Scale};

fn usage() -> ! {
    eprintln!(
        "usage: vehigan-bench <experiment> [--scale quick|paper] [--resume <dir>] [--retry-quarantined] [--stop-after-groups N] [--vehicles N] [--duration S]\n\
         experiments: authority campaign catalog fig3 fig4 fig5a fig5b fig5c fig6 fig7a fig7b fig8 gemm quant resume slo stream table3 tier0 adv ablation probe all"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let experiment = args[0].as_str();
    let mut scale = Scale::Quick;
    let mut resume_dir: Option<PathBuf> = None;
    let mut retry_quarantined = false;
    let mut stop_after_groups: Option<usize> = None;
    let mut vehicles = 10_000usize;
    let mut duration_s = 2.0f64;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                let Some(v) = args.get(i + 1) else { usage() };
                let Some(s) = Scale::parse(v) else { usage() };
                scale = s;
                i += 2;
            }
            "--resume" => {
                let Some(v) = args.get(i + 1) else { usage() };
                resume_dir = Some(PathBuf::from(v));
                i += 2;
            }
            "--retry-quarantined" => {
                retry_quarantined = true;
                i += 1;
            }
            "--stop-after-groups" => {
                let Some(v) = args.get(i + 1) else { usage() };
                let Ok(n) = v.parse::<usize>() else { usage() };
                stop_after_groups = Some(n);
                i += 2;
            }
            "--vehicles" => {
                let Some(v) = args.get(i + 1) else { usage() };
                let Ok(n) = v.parse::<usize>() else { usage() };
                vehicles = n.max(1);
                i += 2;
            }
            "--duration" => {
                let Some(v) = args.get(i + 1) else { usage() };
                let Ok(s) = v.parse::<f64>() else { usage() };
                // A 10-message window at 10 Hz needs ≥ 1.2 s of traffic
                // before any decision can flow.
                duration_s = s.max(1.2);
                i += 2;
            }
            _ => usage(),
        }
    }

    // Experiments that need no trained system.
    match experiment {
        "catalog" => {
            catalog::run();
            return;
        }
        "ablation" => {
            ablation::run();
            return;
        }
        "probe" => {
            vehigan_bench::experiments::probe::run();
            return;
        }
        "fig8" => {
            fig8::run();
            return;
        }
        "gemm" => {
            vehigan_bench::experiments::gemmbench::run();
            return;
        }
        "campaign" => {
            vehigan_bench::experiments::campaign::run(scale);
            return;
        }
        "resume" => {
            resume::run();
            return;
        }
        _ => {}
    }

    // Reject unknown experiment names *before* spending minutes training
    // the harness they would never use.
    const TRAINED: &[&str] = &[
        "fig3",
        "fig4",
        "fig5a",
        "fig5b",
        "fig5c",
        "fig6",
        "fig7a",
        "fig7b",
        "table3",
        "quant",
        "slo",
        "stream",
        "tier0",
        "authority",
        "adv",
        "all",
    ];
    if !TRAINED.contains(&experiment) {
        usage();
    }

    let mut harness = Harness::build_with(scale, resume_dir, retry_quarantined, stop_after_groups);
    let section = |title: &str| println!("\n=== {title} ===");
    match experiment {
        "fig3" => fig3::run(&mut harness),
        "fig4" => fig4::run(&mut harness),
        "fig5a" => fig5::run_5a(&mut harness),
        "fig5b" => fig5::run_5b(&mut harness),
        "fig5c" => fig5::run_5c(&mut harness),
        "fig6" => fig6::run(&mut harness),
        "fig7a" => {
            fig7::run_7a(&mut harness);
        }
        "fig7b" => {
            fig7::run_7b(&mut harness);
        }
        "table3" => table3::run(&mut harness),
        "quant" => vehigan_bench::experiments::quant::run(&mut harness),
        "slo" => vehigan_bench::experiments::slo::run(&mut harness, vehicles, duration_s),
        "stream" => vehigan_bench::experiments::stream::run(&mut harness, vehicles, duration_s),
        "tier0" => vehigan_bench::experiments::tier0::run(&mut harness, vehicles, duration_s),
        "authority" => {
            vehigan_bench::experiments::authority::run(&mut harness, vehicles, duration_s)
        }
        // Composite: all adversarial experiments on one trained harness.
        "adv" => {
            fig5::run_5a(&mut harness);
            fig5::run_5b(&mut harness);
            fig5::run_5c(&mut harness);
            fig6::run(&mut harness);
            fig7::run_7a(&mut harness);
            fig7::run_7b(&mut harness);
        }
        "all" => {
            section("Table I (catalog)");
            catalog::run();
            section("Fig 3");
            fig3::run(&mut harness);
            section("Fig 4");
            fig4::run(&mut harness);
            section("Fig 5a");
            fig5::run_5a(&mut harness);
            section("Fig 5b");
            fig5::run_5b(&mut harness);
            section("Fig 5c");
            fig5::run_5c(&mut harness);
            section("Fig 6");
            fig6::run(&mut harness);
            section("Fig 7a");
            fig7::run_7a(&mut harness);
            section("Fig 7b");
            fig7::run_7b(&mut harness);
            section("Table III");
            table3::run(&mut harness);
            section("Fig 8");
            fig8::run();
            section("Int8 backend");
            vehigan_bench::experiments::quant::run(&mut harness);
            section("Streaming service");
            vehigan_bench::experiments::stream::run(&mut harness, vehicles, duration_s);
            section("Serving SLO");
            vehigan_bench::experiments::slo::run(&mut harness, vehicles, duration_s);
            section("Tier-0 physics gate");
            vehigan_bench::experiments::tier0::run(&mut harness, vehicles, duration_s);
            section("Misbehavior authority");
            vehigan_bench::experiments::authority::run(&mut harness, vehicles, duration_s);
        }
        _ => usage(),
    }
}
