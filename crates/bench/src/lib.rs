//! # vehigan-bench
//!
//! The experiment harness regenerating every table and figure of the
//! VehiGAN paper's evaluation (§V) on the from-scratch Rust stack.
//!
//! Run everything at CPU-friendly scale:
//!
//! ```text
//! cargo run --release -p vehigan-bench -- all --scale quick
//! ```
//!
//! or individual experiments (`catalog`, `fig3`, `fig4`, `fig5a`, `fig5b`,
//! `fig5c`, `fig6`, `fig7a`, `fig7b`, `fig8`, `table3`). CSV artifacts are
//! written to `results/`. Criterion timing benches for Fig 8 live under
//! `benches/`.

pub mod experiments;
pub mod harness;
