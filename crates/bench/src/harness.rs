//! Shared experiment harness: scale presets, trained-system setup, the
//! per-model score cache, and CSV output helpers.

use std::fs;
use std::path::{Path, PathBuf};
use vehigan_core::{score_matrix, GridConfig, Pipeline, PipelineConfig, Wgan};
use vehigan_features::{WindowConfig, WindowDataset};
use vehigan_sim::SimConfig;
use vehigan_vasp::Attack;

/// Experiment scale preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// CPU-minutes scale: 12-model zoo, small fleet. Preserves every
    /// experimental shape; default.
    Quick,
    /// Paper-parameter scale: 60-model zoo (5 noise dims × 3 layer counts
    /// × 4 epoch budgets), larger fleet. Hours of CPU.
    Paper,
}

impl Scale {
    /// Parses `"quick"` / `"paper"`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// The pipeline configuration for this scale.
    pub fn pipeline_config(self) -> PipelineConfig {
        match self {
            Scale::Quick => PipelineConfig {
                sim: SimConfig {
                    n_vehicles: 32,
                    duration_s: 120.0,
                    seed: 42,
                    ..SimConfig::default()
                },
                window: WindowConfig {
                    stride: 4,
                    ..WindowConfig::default()
                },
                grid: GridConfig::quick(),
                top_m: 10,
                deploy_k: 5,
                zoo_threads: num_threads(),
                ..PipelineConfig::quick()
            },
            Scale::Paper => PipelineConfig {
                sim: SimConfig {
                    n_vehicles: 150,
                    duration_s: 600.0,
                    seed: 42,
                    ..SimConfig::default()
                },
                window: WindowConfig {
                    stride: 2,
                    ..WindowConfig::default()
                },
                grid: GridConfig::paper(),
                top_m: 10,
                deploy_k: 5,
                zoo_threads: num_threads(),
                ..PipelineConfig::quick()
            },
        }
    }
}

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
}

/// A trained system plus cached per-member scores on every Table III
/// attack — computed once, reused by Figs 3/4/7 and Table III.
pub struct Harness {
    /// The trained pipeline (zoo + selected ensemble).
    pub pipeline: Pipeline,
    /// The 35-attack catalog in Table III order.
    pub attacks: Vec<Attack>,
    /// Labelled test windows per attack (aligned with `attacks`).
    pub attack_windows: Vec<WindowDataset>,
    /// Benign test windows.
    pub benign_windows: WindowDataset,
    /// `member_scores[member][attack]` — each selected member's anomaly
    /// scores on each attack dataset.
    pub member_scores: Vec<Vec<Vec<f32>>>,
    /// `member_benign[member]` — each member's scores on benign test data.
    pub member_benign: Vec<Vec<f32>>,
}

impl Harness {
    /// Trains the system at `scale` and populates the score cache.
    pub fn build(scale: Scale) -> Harness {
        Self::build_with(scale, None, false, None)
    }

    /// Like [`Harness::build`], but with an optional checkpoint directory:
    /// zoo training persists every finished member there (including
    /// epoch-granular partials of the in-flight group), and a rerun of
    /// the same scale resumes from the directory's manifest — mid-member
    /// when a partial exists — instead of retraining from scratch (the
    /// `--resume <dir>` CLI flag). With `retry_quarantined` (the
    /// `--retry-quarantined` flag), a resumed run retrains previously
    /// quarantined configurations with a fresh derived seed instead of
    /// skipping them. `stop_after_groups` (the `--stop-after-groups N`
    /// flag) stops zoo training cleanly after `N` groups, simulating a
    /// kill for resume testing.
    pub fn build_with(
        scale: Scale,
        resume_dir: Option<PathBuf>,
        retry_quarantined: bool,
        stop_after_groups: Option<usize>,
    ) -> Harness {
        eprintln!("[harness] training pipeline at {scale:?} scale…");
        let mut config = scale.pipeline_config();
        if let Some(dir) = resume_dir {
            eprintln!("[harness] checkpointing zoo training in {}", dir.display());
            config.checkpoint_dir = Some(dir);
        }
        config.retry_quarantined = retry_quarantined;
        config.stop_after_groups = stop_after_groups;
        let pipeline = Pipeline::run(config);
        if !pipeline.quarantined.is_empty() {
            eprintln!(
                "[harness] WARNING: {} grid configurations quarantined:",
                pipeline.quarantined.len()
            );
            for q in &pipeline.quarantined {
                eprintln!("[harness]   {}: {}", q.id(), q.reason);
            }
        }
        eprintln!(
            "[harness] zoo={} models, selected top-{}; building attack campaign…",
            pipeline.zoo.len(),
            pipeline.vehigan.m()
        );
        // The campaign plane engineers each benign test trace once and
        // shares its windows across all 36 datasets; assembly runs in
        // parallel across attacks, bitwise identical to the serial
        // per-attack `test_attack_windows` path.
        let attacks = Attack::catalog();
        let (attack_windows, benign_windows) = {
            let plane = pipeline.campaign_plane();
            (plane.campaign(&attacks), plane.benign_windows())
        };

        eprintln!(
            "[harness] caching per-member scores on {} attacks…",
            attacks.len()
        );
        let (member_scores, member_benign) = {
            let members: Vec<&Wgan> = pipeline.vehigan.members().iter().map(|m| &m.wgan).collect();
            // Benign rides along as the final dataset of the score matrix so
            // one parallel-across-members pass fills both caches.
            let mut datasets: Vec<&WindowDataset> = attack_windows.iter().collect();
            datasets.push(&benign_windows);
            let matrix = score_matrix(&members, &datasets);
            let mut member_scores = Vec::with_capacity(matrix.len());
            let mut member_benign = Vec::with_capacity(matrix.len());
            for mut per_dataset in matrix {
                member_benign.push(per_dataset.pop().expect("benign scores"));
                member_scores.push(per_dataset);
            }
            (member_scores, member_benign)
        };
        Harness {
            pipeline,
            attacks,
            attack_windows,
            benign_windows,
            member_scores,
            member_benign,
        }
    }

    /// Ensemble scores on attack dataset `attack_idx` using member subset
    /// `members` (mean of cached member scores).
    pub fn ensemble_attack_scores(&self, members: &[usize], attack_idx: usize) -> Vec<f32> {
        mean_rows(members.iter().map(|&i| &self.member_scores[i][attack_idx]))
    }

    /// Ensemble scores on benign test data for a member subset.
    pub fn ensemble_benign_scores(&self, members: &[usize]) -> Vec<f32> {
        mean_rows(members.iter().map(|&i| &self.member_benign[i]))
    }

    /// Ensemble threshold for a member subset (mean of member τ).
    pub fn ensemble_threshold(&self, members: &[usize]) -> f32 {
        let sum: f32 = members
            .iter()
            .map(|&i| self.pipeline.vehigan.members()[i].threshold)
            .sum();
        sum / members.len() as f32
    }
}

fn mean_rows<'a>(rows: impl Iterator<Item = &'a Vec<f32>>) -> Vec<f32> {
    let mut acc: Vec<f32> = Vec::new();
    let mut count = 0usize;
    for row in rows {
        if acc.is_empty() {
            acc = vec![0.0; row.len()];
        }
        for (a, &v) in acc.iter_mut().zip(row) {
            *a += v;
        }
        count += 1;
    }
    assert!(count > 0, "mean of zero rows");
    for a in &mut acc {
        *a /= count as f32;
    }
    acc
}

/// The results directory (`results/` at the workspace root).
pub fn results_dir() -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Writes CSV rows (first row = header) to `results/<name>`.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let mut out = String::with_capacity(rows.len() * 32 + header.len() + 1);
    out.push_str(header);
    out.push('\n');
    for row in rows {
        out.push_str(row);
        out.push('\n');
    }
    let path = results_dir().join(name);
    fs::write(&path, out).expect("write results csv");
    eprintln!("[harness] wrote {}", path.display());
}

/// Fraction of scores above a threshold (the FPR when scores are benign).
pub fn rate_above(scores: &[f32], threshold: f32) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    scores.iter().filter(|&&s| s > threshold).count() as f64 / scores.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn rate_above_counts() {
        assert_eq!(rate_above(&[0.1, 0.6, 0.9], 0.5), 2.0 / 3.0);
        assert_eq!(rate_above(&[], 0.5), 0.0);
    }

    #[test]
    fn mean_rows_averages() {
        let a = vec![1.0f32, 3.0];
        let b = vec![3.0f32, 5.0];
        let m = mean_rows([&a, &b].into_iter());
        assert_eq!(m, vec![2.0, 4.0]);
    }
}
