//! One module per regenerated table/figure of the paper's evaluation.

pub mod ablation;
pub mod authority;
pub mod campaign;
pub mod catalog;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod gemmbench;
pub mod probe;
pub mod quant;
pub mod resume;
pub mod serve_driver;
pub mod slo;
pub mod stream;
pub mod table3;
pub mod tier0;
