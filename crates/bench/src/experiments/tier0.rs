//! Tier-0 physics-gate benchmark: throughput, suppression coverage, and
//! escalation-safety accounting for the CUSUM/EWMA kinematic monitors in
//! front of the int8 ensemble (DESIGN.md §12).
//!
//! Run via `vehigan-bench tier0 --scale quick [--vehicles N] [--duration S]`
//! (trains the quick system, fits a [`Tier0Calibration`] on the benign
//! training fleet, proves escalation consistency exhaustively on the
//! Table III campaign, then drives the serve data plane gated and
//! ungated over the same traffic; writes `results/BENCH_tier0.json`).
//!
//! The run **gates** its own acceptance criteria and panics when they
//! fail (so the CI smoke step catches regressions):
//!
//! - the tier-0-gated server sustains ≥ 1.5× the BSMs/sec of the PR 7
//!   serve baseline (same config, no tier-0) on the same traffic;
//! - ≥ 60 % of benign-vehicle windows in the stream are suppressed at
//!   tier 0 (never touching the ensemble);
//! - AUROC degradation of the gated pipeline vs always-tier-1 over the
//!   35-attack Table III campaign ≤ 0.01 per attack;
//! - **zero** suppression of any campaign window whose always-tier-1
//!   score would have escalated past τ_esc — checked exhaustively over
//!   all 36 campaign datasets after [`Tier0Calibration::constrain`]
//!   tightens the suppression scale below every escalating window;
//! - two identical gated runs emit bitwise-identical decisions and
//!   counters (determinism).

use crate::experiments::serve_driver::{
    city_fleet, drive, drive_observed, gate_scores, latency_pct, mixed_stream, slice_ranges,
};
use crate::harness::{results_dir, Harness};
use std::collections::HashMap;
use vehigan_features::{GateDecision, Tier0Calibration, Tier0Monitor, NUM_STATISTICS};
use vehigan_metrics::{auroc, percentile};
use vehigan_serve::{escalation_threshold, EscalationPolicy, ServerConfig};
use vehigan_sim::Bsm;
use vehigan_vasp::DatasetBuilder;

/// Minimum required BSMs/sec speedup of the tier-0-gated server over the
/// identical server without tier 0 (ISSUE gate).
pub const MIN_SPEEDUP: f64 = 1.5;

/// Minimum fraction of benign-vehicle stream windows suppressed at
/// tier 0 (ISSUE gate).
pub const MIN_BENIGN_SUPPRESSION: f64 = 0.60;

/// Maximum tolerated per-attack AUROC *degradation* of the gated
/// pipeline vs always-tier-1 over the attack campaign (ISSUE gate).
/// Signed, not absolute: suppressing a benign gate false-positive into
/// the pinned band can only *improve* ranking, and an improvement must
/// not trip the budget.
pub const AUROC_DELTA_BUDGET: f64 = 0.01;

/// Benign quantile the per-statistic decision intervals are fit at.
pub const BENIGN_QUANTILE: f64 = 0.995;

/// Escalation cutoff percentile on benign gate scores. The tier-0 bench
/// pins this at the benign **maximum** (p100): escalation then means
/// "the int8 gate scored this above anything the benign campaign ever
/// produced", so the escalating set `constrain` must stay below contains
/// only genuinely attacked windows. At interior percentiles (the
/// `stream` bench uses 97.5) the escalating set contains benign gate
/// false-positives by construction — physics-normal windows whose
/// monitor ratios sit deep inside the benign bulk — and the
/// zero-violation constraint would collapse the suppression scale to
/// their minimum ratio (~p0.5 of benign), destroying coverage.
pub const ESCALATION_PERCENTILE: f64 = 100.0;

/// Fraction of simulated vehicles transmitting falsified BSMs (matches
/// the `stream` bench so the two baselines are comparable).
const ATTACKER_FRACTION: f64 = 0.1;

/// Streams one trace through a fresh monitor and snapshots it at every
/// dataset window boundary: window `k` (stride `s`) covers feature rows
/// `[k·s, k·s + w)`, row `i` is derived from messages `(i, i+1)`, so the
/// monitor state judged against window `k` is the state right after
/// message `k·s + w` — exactly what a serve shard would hold when that
/// window completes.
fn trace_snapshots(
    bsms: &[Bsm],
    cal: &Tier0Calibration,
    window: usize,
    stride: usize,
) -> Vec<Tier0Monitor> {
    if bsms.len() < 2 {
        return Vec::new();
    }
    let rows = bsms.len() - 1;
    if rows < window {
        return Vec::new();
    }
    let count = (rows - window) / stride + 1;
    let mut snaps = Vec::with_capacity(count);
    let mut monitor = Tier0Monitor::new(cal.params);
    let mut next = 0usize;
    for (i, bsm) in bsms.iter().enumerate() {
        monitor.push(bsm);
        if next < count && i == next * stride + window {
            snaps.push(monitor);
            next += 1;
        }
    }
    debug_assert_eq!(snaps.len(), count);
    snaps
}

/// Monitor snapshots for one campaign dataset: the benign test fleet
/// with the attacker traces (if any) spliced in at their fleet indices,
/// in fleet order — the same trace order `build_windows` uses.
fn dataset_snapshots(
    fleet: &[vehigan_sim::VehicleTrace],
    attackers: &HashMap<usize, Vec<Bsm>>,
    cal: &Tier0Calibration,
    window: usize,
    stride: usize,
) -> Vec<Tier0Monitor> {
    let mut snaps = Vec::new();
    for (i, t) in fleet.iter().enumerate() {
        let bsms = attackers.get(&i).map_or(&t.bsms[..], |b| &b[..]);
        snaps.extend(trace_snapshots(bsms, cal, window, stride));
    }
    snaps
}

/// Runs the tier-0 benchmark on a trained harness and writes
/// `results/BENCH_tier0.json`.
pub fn run(harness: &mut Harness, vehicles: usize, duration_s: f64) {
    println!(
        "Tier-0 physics gate benchmark: {vehicles} vehicles x {duration_s:.1} s \
         (gated vs ungated serve, campaign escalation-safety proof)"
    );
    harness
        .pipeline
        .compile_int8()
        .expect("int8 backend compiles");
    let k = harness.pipeline.vehigan.k();
    let members: Vec<usize> = (0..k).collect();
    let gate_members = members.clone();
    let wcfg = harness.pipeline.config.window;
    let (window, stride) = (wcfg.window, wcfg.stride);

    // --- Calibration: fit on the benign *training* fleet, band the
    // pinned scores inside the benign bulk of the tier-1 gate. ---
    let mut cal = Tier0Calibration::fit(harness.pipeline.train_fleet(), window, BENIGN_QUANTILE)
        .expect("tier-0 calibration fits");
    let benign_gate = gate_scores(harness, &gate_members, &harness.benign_windows.x);
    let tau_esc = escalation_threshold(&benign_gate, ESCALATION_PERCENTILE);
    let tau_detect = percentile(&benign_gate, 99.0);
    let (band_floor, band_ceil) = (
        percentile(&benign_gate, 10.0),
        percentile(&benign_gate, 50.0),
    );
    assert!(
        band_ceil < tau_esc,
        "benign gate-score distribution degenerate: p50 {band_ceil} >= tau_esc {tau_esc}"
    );
    cal.set_score_band(band_floor, band_ceil, tau_detect);
    println!(
        "calibration: quantile {BENIGN_QUANTILE}, warmup {window}, band \
         [{band_floor:.4}, {band_ceil:.4}] under tau_esc {tau_esc:.4} / tau {tau_detect:.4}"
    );

    // --- Campaign alignment: monitor snapshot per dataset window. ---
    let test_fleet: Vec<vehigan_sim::VehicleTrace> = harness.pipeline.test_fleet().to_vec();
    let builder = DatasetBuilder::new(&test_fleet, harness.pipeline.config.dataset.clone());
    let no_attackers = HashMap::new();
    let benign_snaps = dataset_snapshots(&test_fleet, &no_attackers, &cal, window, stride);
    assert_eq!(
        benign_snaps.len(),
        harness.benign_windows.labels.len(),
        "benign monitor snapshots misaligned with the benign window dataset"
    );
    let n_attacks = harness.attacks.len();
    let mut attack_snaps: Vec<Vec<Tier0Monitor>> = Vec::with_capacity(n_attacks);
    let mut attack_gate: Vec<Vec<f32>> = Vec::with_capacity(n_attacks);
    for ai in 0..n_attacks {
        let attackers: HashMap<usize, Vec<Bsm>> = builder
            .attacker_traces(harness.attacks[ai])
            .into_iter()
            .map(|(i, lt)| (i, lt.trace.bsms))
            .collect();
        let snaps = dataset_snapshots(&test_fleet, &attackers, &cal, window, stride);
        assert_eq!(
            snaps.len(),
            harness.attack_windows[ai].labels.len(),
            "monitor snapshots misaligned with attack dataset {}",
            harness.attacks[ai].name()
        );
        attack_gate.push(gate_scores(
            harness,
            &gate_members,
            &harness.attack_windows[ai].x,
        ));
        attack_snaps.push(snaps);
    }

    // --- Escalation-consistency pass: tighten the suppression scale
    // below every campaign window whose always-tier-1 score escalates,
    // across all 36 datasets (the 35 attacks share the benign 75%). ---
    let mut escalating = 0usize;
    let mut tightened = 0usize;
    let mut binding: Option<(String, f32, f32)> = None;
    let mut low: Vec<(String, usize, [f32; NUM_STATISTICS], f32, f32)> = Vec::new();
    for (di, (snaps, gate)) in attack_snaps
        .iter()
        .zip(&attack_gate)
        .chain(std::iter::once((&benign_snaps, &benign_gate)))
        .enumerate()
    {
        for (wi, (snap, &g)) in snaps.iter().zip(gate.iter()).enumerate() {
            if g > tau_esc {
                escalating += 1;
                let stats = snap.statistics();
                let ratio = cal.ratio(&stats);
                if ratio < 0.7 {
                    let name = harness
                        .attacks
                        .get(di)
                        .map(|a| a.name().to_string())
                        .unwrap_or_else(|| "benign".to_string());
                    let mut norm = [0f32; NUM_STATISTICS];
                    for i in 0..NUM_STATISTICS {
                        norm[i] = stats[i] / cal.h[i].max(1e-12) / cal.scale.max(1e-12);
                    }
                    low.push((name, wi, norm, ratio, g));
                }
                if cal.constrain(&stats) {
                    tightened += 1;
                    let name = harness
                        .attacks
                        .get(di)
                        .map(|a| a.name().to_string())
                        .unwrap_or_else(|| "benign".to_string());
                    binding = Some((name, cal.ratio(&stats), g));
                }
            }
        }
    }
    low.sort_by(|a, b| a.3.total_cmp(&b.3));
    println!(
        "constrain: {} escalating windows with pre-constrain ratio < 0.7:",
        low.len()
    );
    for (name, wi, norm, ratio, g) in low.iter().take(12) {
        println!(
            "  {name} w{wi}: ratio {ratio:.3}, gate {g:.3}, stats/h {:?}",
            norm.map(|v| (v * 1000.0).round() / 1000.0)
        );
    }
    // The benign max-ratio envelope tells how much suppression a given
    // scale buys: suppression ≈ the percentile `scale` sits at.
    let mut benign_ratios: Vec<f32> = benign_snaps
        .iter()
        .map(|s| cal.ratio(&s.statistics()))
        .collect();
    benign_ratios.sort_by(f32::total_cmp);
    let bq = |p: f64| percentile(&benign_ratios, p);
    println!(
        "constrain: {escalating} escalating campaign windows, {tightened} tightenings, \
         final scale {:.4}; benign ratio p50/p60/p75/p90 = {:.3}/{:.3}/{:.3}/{:.3}",
        cal.scale,
        bq(50.0),
        bq(60.0),
        bq(75.0),
        bq(90.0)
    );
    if let Some((name, ratio, g)) = binding {
        println!("constrain: binding window from {name}: ratio {ratio:.4}, gate score {g:.4}");
    }

    // --- Exhaustive safety check + per-attack AUROC drift. ---
    // Replays the serve suppression policy per vehicle: a window skips
    // tier-1 only when physics certifies it unchanged AND the vehicle
    // holds a fresh (streak < refresh) sub-detection tier-1 score to
    // carry forward — the same carry-forward the shards implement.
    let per_trace: Vec<usize> = test_fleet
        .iter()
        .map(|t| {
            let rows = t.bsms.len().saturating_sub(1);
            if rows < window {
                0
            } else {
                (rows - window) / stride + 1
            }
        })
        .collect();
    let mut violations = 0usize;
    let mut max_delta = f64::NEG_INFINITY;
    let mut mean_delta = 0.0f64;
    let mut worst_attack = String::new();
    let mut campaign_suppressed = 0usize;
    let mut campaign_windows = 0usize;
    for ai in 0..n_attacks {
        let ds = &harness.attack_windows[ai];
        let tier2 = harness.ensemble_attack_scores(&members, ai);
        let gate = &attack_gate[ai];
        let snaps = &attack_snaps[ai];
        let mut reference = Vec::with_capacity(gate.len());
        let mut gated = Vec::with_capacity(gate.len());
        let mut base = 0usize;
        for &count in &per_trace {
            let mut last: Option<f32> = None;
            let mut streak = 0u32;
            for i in base..base + count {
                let (g, t2v) = (gate[i], tier2[i]);
                let tiered = if g > tau_esc { t2v } else { g };
                reference.push(tiered);
                let carried = match last {
                    Some(l) if l < cal.tau && streak < cal.refresh => Some(l),
                    _ => None,
                };
                match carried.filter(|_| cal.evaluate(&snaps[i]).0 == GateDecision::Suppress) {
                    Some(l) => {
                        violations += (g > tau_esc) as usize;
                        campaign_suppressed += 1;
                        gated.push(l);
                        streak += 1;
                    }
                    None => {
                        gated.push(tiered);
                        last = Some(g);
                        streak = 0;
                    }
                }
            }
            base += count;
        }
        campaign_windows += gate.len();
        // Signed degradation: positive = the gate cost ranking quality.
        let delta = auroc(&reference, &ds.labels) - auroc(&gated, &ds.labels);
        mean_delta += delta;
        if delta > max_delta {
            max_delta = delta;
            worst_attack = harness.attacks[ai].name().to_string();
        }
    }
    mean_delta /= n_attacks as f64;
    let mut benign_campaign_suppressed = 0usize;
    {
        let mut base = 0usize;
        for &count in &per_trace {
            let mut last: Option<f32> = None;
            let mut streak = 0u32;
            for i in base..base + count {
                let g = benign_gate[i];
                let fresh = matches!(last, Some(l) if l < cal.tau && streak < cal.refresh);
                if fresh && cal.evaluate(&benign_snaps[i]).0 == GateDecision::Suppress {
                    violations += (g > tau_esc) as usize;
                    benign_campaign_suppressed += 1;
                    streak += 1;
                } else {
                    last = Some(g);
                    streak = 0;
                }
            }
            base += count;
        }
    }
    let benign_campaign_rate = benign_campaign_suppressed as f64 / benign_snaps.len() as f64;
    println!(
        "campaign: AUROC degradation mean {mean_delta:.5}, max {max_delta:.5} ({worst_attack}); \
         suppressed {campaign_suppressed}/{campaign_windows} attack-dataset windows, \
         benign dataset {benign_campaign_rate:.3}, violations {violations}"
    );

    // --- Streaming: identical traffic, gated vs ungated server. ---
    let fleet = city_fleet(vehicles, duration_s, 7);
    let (stream, attackers) = mixed_stream(&fleet, 23, ATTACKER_FRACTION);
    let ranges = slice_ranges(&stream);
    let expected_windows: usize = fleet.iter().map(|t| t.bsms.len().saturating_sub(10)).sum();
    println!(
        "traffic: {} BSMs from {vehicles} vehicles ({attackers} attackers), \
         {expected_windows} complete windows",
        stream.len()
    );
    let base_config = ServerConfig {
        n_shards: 4,
        policy: EscalationPolicy::Threshold(tau_esc),
        members: Some(members.clone()),
        gate_members: Some(gate_members.clone()),
        ..ServerConfig::default()
    };
    let gated_config = ServerConfig {
        tier0: Some(cal),
        ..base_config.clone()
    };
    // Best-of-2 on each side: the drives are short at CI smoke scale, so
    // a single pass is at the mercy of scheduler noise.
    let u1 = drive(harness, &stream, &ranges, base_config.clone(), None);
    let u2 = drive(harness, &stream, &ranges, base_config, None);
    let every = (1.0 / ATTACKER_FRACTION) as usize;
    let (mut benign_windows, mut benign_suppressed) = (0u64, 0u64);
    let a = drive_observed(harness, &stream, &ranges, gated_config.clone(), None, |d| {
        if !(d.vehicle.0 as usize).is_multiple_of(every) {
            benign_windows += 1;
            benign_suppressed += d.suppressed as u64;
        }
    });
    let b = drive(harness, &stream, &ranges, gated_config, None);

    assert_eq!(
        a.decisions as usize, expected_windows,
        "gated decisions != windows"
    );
    assert_eq!(
        u1.decisions, a.decisions,
        "ungated decisions != gated decisions"
    );
    let ungated_s = u1.elapsed_s.min(u2.elapsed_s);
    let gated_s = a.elapsed_s.min(b.elapsed_s);
    let ungated_rate = stream.len() as f64 / ungated_s;
    let gated_rate = stream.len() as f64 / gated_s;
    let speedup = gated_rate / ungated_rate;
    let benign_stream_rate = benign_suppressed as f64 / benign_windows.max(1) as f64;
    let stream_suppressed_rate = a.stats.tier0_suppressed as f64 / a.stats.windows_scored as f64;
    let deterministic = a.fnv == b.fnv && a.decisions == b.decisions && a.stats == b.stats;
    let mut tick_lat = a.tick_lat.clone();
    let (p50_ms, p99_ms) = (
        latency_pct(&mut tick_lat, a.decisions, 50.0),
        latency_pct(&mut tick_lat, a.decisions, 99.0),
    );

    println!(
        "{:>24} {:>14} {:>12} {:>12} {:>12}",
        "path", "BSMs/sec", "suppressed", "screened", "escalated"
    );
    println!(
        "{:>24} {:>14.0} {:>12} {:>12} {:>12}",
        "ungated (PR 7)",
        ungated_rate,
        u1.stats.tier0_suppressed,
        u1.stats.tier1_screened,
        u1.stats.tier2_escalated
    );
    println!(
        "{:>24} {:>14.0} {:>12} {:>12} {:>12}",
        "tier-0 gated",
        gated_rate,
        a.stats.tier0_suppressed,
        a.stats.tier1_screened,
        a.stats.tier2_escalated
    );
    println!(
        "speedup {speedup:.2}x, benign stream suppression {benign_stream_rate:.3} \
         (overall {stream_suppressed_rate:.3}), p50 {p50_ms:.2} ms, p99 {p99_ms:.2} ms"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"bench\": \"tier0\",\n  \"vehicles\": {vehicles},\n  \"duration_s\": {duration_s},\n  \"bsms\": {},\n  \"windows\": {},\n  \"attackers\": {attackers},\n  \"shards\": 4,\n  \"k\": {k},\n",
        stream.len(),
        a.decisions,
    ));
    json.push_str(&format!(
        "  \"calibration\": {{\"quantile\": {BENIGN_QUANTILE}, \"warmup\": {window}, \"scale\": {:.5}, \"refresh\": {}, \"tau_esc\": {tau_esc:.5}, \"tau\": {tau_detect:.5}, \"band_floor\": {band_floor:.5}, \"band_ceil\": {band_ceil:.5}, \"tightened\": {tightened}, \"escalating_windows\": {escalating}}},\n",
        cal.scale, cal.refresh
    ));
    json.push_str(&format!(
        "  \"campaign\": {{\"attacks\": {n_attacks}, \"windows\": {campaign_windows}, \"suppressed\": {campaign_suppressed}, \"benign_suppression\": {benign_campaign_rate:.4}, \"mean_delta\": {mean_delta:.5}, \"max_delta\": {max_delta:.5}, \"worst_attack\": \"{worst_attack}\", \"violations\": {violations}}},\n"
    ));
    json.push_str(&format!(
        "  \"ungated\": {{\"bsms_per_sec\": {ungated_rate:.0}, \"tier1_screened\": {}, \"tier2_escalated\": {}}},\n",
        u1.stats.tier1_screened, u1.stats.tier2_escalated
    ));
    json.push_str(&format!(
        "  \"gated\": {{\"bsms_per_sec\": {gated_rate:.0}, \"p50_ms\": {p50_ms:.3}, \"p99_ms\": {p99_ms:.3}, \"tier0_suppressed\": {}, \"tier1_screened\": {}, \"tier2_escalated\": {}, \"benign_suppression\": {benign_stream_rate:.4}, \"overall_suppression\": {stream_suppressed_rate:.4}}},\n",
        a.stats.tier0_suppressed, a.stats.tier1_screened, a.stats.tier2_escalated
    ));
    json.push_str(&format!(
        "  \"gates\": {{\"min_speedup\": {MIN_SPEEDUP}, \"speedup\": {speedup:.2}, \"speedup_ok\": {}, \"min_benign_suppression\": {MIN_BENIGN_SUPPRESSION}, \"suppression_ok\": {}, \"auroc_budget\": {AUROC_DELTA_BUDGET}, \"auroc_ok\": {}, \"zero_violations\": {}, \"deterministic\": {deterministic}, \"drained\": true}}\n}}\n",
        speedup >= MIN_SPEEDUP,
        benign_stream_rate >= MIN_BENIGN_SUPPRESSION,
        max_delta <= AUROC_DELTA_BUDGET,
        violations == 0,
    ));
    let path = results_dir().join("BENCH_tier0.json");
    std::fs::write(&path, json).expect("write BENCH_tier0.json");
    eprintln!("[harness] wrote {}", path.display());

    // --- Gates (ISSUE acceptance criteria). ---
    assert_eq!(
        violations, 0,
        "tier 0 suppressed {violations} campaign windows whose tier-1 score escalates"
    );
    assert!(
        max_delta <= AUROC_DELTA_BUDGET,
        "tier-0 AUROC degradation {max_delta:.5} exceeds the {AUROC_DELTA_BUDGET} budget \
         ({worst_attack})"
    );
    assert!(
        benign_stream_rate >= MIN_BENIGN_SUPPRESSION,
        "benign stream suppression {benign_stream_rate:.3} below the {MIN_BENIGN_SUPPRESSION} floor"
    );
    assert!(
        speedup >= MIN_SPEEDUP,
        "tier-0 speedup {speedup:.2}x below the required {MIN_SPEEDUP}x"
    );
    assert!(
        deterministic,
        "two identical gated runs diverged (fnv {:#x} vs {:#x})",
        a.fnv, b.fnv
    );
    println!(
        "gates: speedup {speedup:.2}x >= {MIN_SPEEDUP}x ok, benign suppression \
         {benign_stream_rate:.3} >= {MIN_BENIGN_SUPPRESSION} ok, AUROC degradation \
         {max_delta:.5} <= {AUROC_DELTA_BUDGET} ok, violations 0 ok, deterministic ok, drained ok"
    );
}
