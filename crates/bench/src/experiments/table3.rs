//! Table III: AUROC of VEHIGAN₁₀¹⁰ and VEHIGAN₅⁵ vs the PCA / KNN / GMM /
//! AE baselines (raw `Base-` and engineered `Vehi-` variants) against all
//! 35 attacks.

use crate::harness::{write_csv, Harness};
use vehigan_baselines::{
    flatten_windows, AeConfig, AeDetector, AnomalyDetector, GmmDetector, KnnDetector, PcaDetector,
};
use vehigan_features::WindowDataset;
use vehigan_metrics::auroc;

struct Column {
    name: &'static str,
    auroc: Vec<f64>,
}

fn baseline_column(
    name: &'static str,
    detector: &mut dyn AnomalyDetector,
    train: &WindowDataset,
    tests: &[WindowDataset],
) -> Column {
    eprintln!("[table3] fitting {name}…");
    detector.fit(&flatten_windows(&train.x));
    let auroc = tests
        .iter()
        .map(|ds| {
            let scores = detector.score_batch(&flatten_windows(&ds.x));
            auroc(&scores, &ds.labels)
        })
        .collect();
    Column { name, auroc }
}

/// Runs Table III and writes `results/table3_auroc.csv`.
pub fn run(harness: &mut Harness) {
    let n_attacks = harness.attacks.len();
    let m = harness.pipeline.vehigan.m();

    // VEHIGAN columns straight from the score cache.
    let vehigan_col = |members: Vec<usize>, name: &'static str, h: &Harness| Column {
        name,
        auroc: (0..n_attacks)
            .map(|ai| {
                let scores = h.ensemble_attack_scores(&members, ai);
                auroc(&scores, &h.attack_windows[ai].labels)
            })
            .collect(),
    };
    let col_v10 = vehigan_col((0..m).collect(), "VehiGAN-10/10", harness);
    let col_v5 = vehigan_col((0..m.min(5)).collect(), "VehiGAN-5/5", harness);

    // Raw-representation data for the Base baseline.
    eprintln!("[table3] building raw-representation datasets…");
    let raw_train = harness.pipeline.train_benign_windows_raw();
    let raw_tests: Vec<WindowDataset> = harness
        .attacks
        .iter()
        .map(|&a| harness.pipeline.test_attack_windows_raw(a))
        .collect();

    let eng_train = &harness.pipeline.train_windows;
    let eng_tests = &harness.attack_windows;

    let ae_config = AeConfig {
        epochs: 12,
        ..AeConfig::default()
    };
    let columns = vec![
        col_v10,
        col_v5,
        baseline_column(
            "Base-AE",
            &mut AeDetector::new(ae_config),
            &raw_train,
            &raw_tests,
        ),
        baseline_column(
            "Vehi-AE",
            &mut AeDetector::new(ae_config),
            eng_train,
            eng_tests,
        ),
        baseline_column("Vehi-PCA", &mut PcaDetector::new(), eng_train, eng_tests),
        baseline_column(
            "Vehi-KNN",
            &mut KnnDetector::default(),
            eng_train,
            eng_tests,
        ),
        baseline_column(
            "Vehi-GMM",
            &mut GmmDetector::default(),
            eng_train,
            eng_tests,
        ),
    ];

    // Print the table.
    print!("{:<30}", "attack");
    for c in &columns {
        print!(" {:>13}", c.name);
    }
    println!();
    let mut rows = Vec::with_capacity(n_attacks + 1);
    let mut best_counts = vec![0usize; columns.len()];
    for ai in 0..n_attacks {
        let name = harness.attacks[ai].name();
        print!("{name:<30}");
        let vals: Vec<f64> = columns.iter().map(|c| c.auroc[ai]).collect();
        let best = vals.iter().copied().fold(f64::MIN, f64::max);
        for (ci, v) in vals.iter().enumerate() {
            let marker = if (v - best).abs() < 1e-9 { "*" } else { " " };
            if (v - best).abs() < 1e-9 {
                best_counts[ci] += 1;
            }
            print!(" {v:>12.3}{marker}");
        }
        println!();
        rows.push(format!(
            "{name},{}",
            vals.iter()
                .map(|v| format!("{v:.4}"))
                .collect::<Vec<_>>()
                .join(",")
        ));
    }
    // Averages row.
    print!("{:<30}", "Average");
    let mut avg_line = String::from("Average");
    for c in &columns {
        let avg = c.auroc.iter().sum::<f64>() / n_attacks as f64;
        print!(" {avg:>12.3} ");
        avg_line.push_str(&format!(",{avg:.4}"));
    }
    println!();
    rows.push(avg_line);

    let header = format!(
        "attack,{}",
        columns
            .iter()
            .map(|c| c.name.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    write_csv("table3_auroc.csv", &header, &rows);

    println!("\nwins per detector (ties counted):");
    for (c, wins) in columns.iter().zip(&best_counts) {
        println!("  {:<14} {wins}/{n_attacks}", c.name);
    }
    // The advanced-attack block (last six rows of Table III).
    let advanced: Vec<usize> = (0..n_attacks)
        .filter(|&ai| harness.attacks[ai].is_advanced())
        .collect();
    let adv_avg =
        |c: &Column| advanced.iter().map(|&ai| c.auroc[ai]).sum::<f64>() / advanced.len() as f64;
    println!(
        "\nadvanced heading&yaw-rate attacks: VehiGAN-10/10 avg {:.3} vs Base-AE avg {:.3} \
         (paper: VEHIGAN dominates the advanced block)",
        adv_avg(&columns[0]),
        adv_avg(&columns[2]),
    );
    println!(
        "feature-engineering lift (Table III BaseAE vs VehiAE): {:.3} → {:.3}",
        columns[2].auroc.iter().sum::<f64>() / n_attacks as f64,
        columns[3].auroc.iter().sum::<f64>() / n_attacks as f64,
    );
}
