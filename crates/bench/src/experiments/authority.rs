//! Fleet-scale misbehavior-authority benchmark: the BSM → detection →
//! report → revocation loop end-to-end, plus a 1M-report evidence
//! campaign against the seed's unbounded-queue authority (DESIGN.md §13).
//!
//! Run via `vehigan-bench authority --scale quick [--vehicles N]
//! [--duration S]` (trains the quick system, drives the streaming server
//! over mixed city traffic with rotating RSU reporter identities, feeds
//! the emitted MBRs to the authority, then runs the synthetic 1M-report
//! campaign three ways — serial, sharded, seed-style naive — and writes
//! `results/BENCH_authority.json`).
//!
//! The run **gates** its own acceptance criteria and panics when they
//! fail (so the CI smoke step catches regressions):
//!
//! - **Phase 1 (live loop)** — every report the server emits validates at
//!   the authority (zero rejections), rotating RSU coverage corroborates
//!   at least one conviction, and replaying the same reports serially via
//!   `ingest_ref` reproduces the per-tick `ingest_batch` authority state
//!   bit for bit (CRL, evidence fingerprint, counters).
//! - **Phase 2 (campaign)** — sharded `ingest_batch` and serial ingest
//!   decide bitwise-identical conviction sets; the evidence pipeline
//!   sustains ≥ [`SPEEDUP_TARGET`]× the seed VecDeque path's reports/sec;
//!   zero honest vehicles are ever revoked (200 stalked victims under a
//!   single-reporter smear plus 28 000 sparse two-reporter noise victims);
//!   per-suspect authority state stays constant-size (the naive path
//!   retains every in-window report); every attacker's time-limited
//!   revocation is still active at the end of the horizon (extension
//!   churn instead of lapse); and an RSU mirror syncing by [`CrlDelta`]
//!   converges to the authority CRL.

use crate::experiments::serve_driver::{city_fleet, mixed_stream, slice_ranges};
use crate::harness::{results_dir, Harness};
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Instant;
use vehigan_features::IngestGuard;
use vehigan_mbr::{
    AuthorityPolicy, CertificateRevocationList, IngestOutcome, Mbr, MisbehaviorAuthority,
    RevocationRecord, SuspectEvidence,
};
use vehigan_serve::{EscalationPolicy, ServerConfig, StreamServer};
use vehigan_sim::VehicleId;

/// Minimum reports/sec multiple of the sharded evidence pipeline over the
/// seed's retain-every-report VecDeque authority (ISSUE gate).
pub const SPEEDUP_TARGET: f64 = 5.0;

/// Fraction of phase-1 vehicles transmitting falsified BSMs. Matches the
/// `stream` bench's detection-focused mix so the short CI smoke still
/// produces enough flagged escalations to corroborate a conviction.
const ATTACKER_FRACTION: f64 = 0.1;

/// Rotating RSU reporter identities covering the phase-1 stream (the
/// serving cell hands the vehicle off every tick, so corroboration needs
/// reports from distinct observers — exactly the authority's job).
const N_RSUS: u32 = 4;
const RSU_BASE: u32 = 1 << 30;

// --- Phase-2 synthetic campaign: exactly 1 000 000 reports. ---

/// Campaign horizon in seconds.
const HORIZON_S: usize = 600;
/// Reports are generated (and re-generated per path) in slices of this
/// many seconds, so no path ever holds the full campaign in memory.
const CHUNK_S: usize = 60;
/// Misbehaving vehicles, each accused by 4 rotating reporters at 1 Hz.
const N_ATTACKERS: u32 = 400;
/// Honest vehicles smeared by a single stalker at [`STALKED_HZ`] — the
/// `min_reporters` guard must hold regardless of report volume.
const N_STALKED: u32 = 200;
const STALKED_HZ: usize = 4;
/// Honest vehicles receiving 10 sparse reports from only two distinct
/// reporters — below both the reporter and the decayed-weight bars.
const N_NOISE: u32 = 28_000;
const NOISE_REPORTS: usize = 10;
const NOISE_SPACING_S: f64 = 45.0;
/// Flat evidence length carried by every campaign report.
const EV_LEN: usize = 8;

/// Campaign suspect/reporter id ranges (disjoint by construction).
const STALKED_BASE: u32 = 500_000;
const NOISE_BASE: u32 = 600_000;
const ATTACKER_BASE: u32 = 1_000_000;
const ATTACKER_RSU_BASE: u32 = 2_000_000;
const STALKER_BASE: u32 = 3_000_000;
const NOISE_RSU_BASE: u32 = 4_000_000;

/// Campaign conviction policy: 3 distinct reporters and decayed weight 5
/// inside a 90 s window; revocations expire after 120 s unless extended.
fn campaign_policy() -> AuthorityPolicy {
    AuthorityPolicy {
        min_reporters: 3,
        min_reports: 5,
        window_s: 90.0,
        evidence_len: EV_LEN,
        revocation_validity_s: Some(120.0),
    }
}

fn campaign_report(reporter: u32, suspect: u32, t: f64) -> Mbr {
    Mbr {
        reporter: VehicleId(reporter),
        suspect: VehicleId(suspect),
        timestamp: t,
        score: 1.0,
        threshold: 0.25,
        evidence: vec![0.0; EV_LEN],
    }
}

/// Deterministically regenerates campaign chunk `c` (seconds
/// `c·CHUNK_S .. (c+1)·CHUNK_S`): per-suspect timestamps are monotone,
/// chunks are identical across regenerations, and the full horizon sums
/// to exactly 1 000 000 reports.
fn campaign_chunk(c: usize) -> Vec<Mbr> {
    let (t0, t1) = ((c * CHUNK_S) as f64, ((c + 1) * CHUNK_S) as f64);
    let per_sec = N_ATTACKERS as usize + N_STALKED as usize * STALKED_HZ;
    let mut out = Vec::with_capacity(CHUNK_S * per_sec + 32_000);
    for sec in c * CHUNK_S..(c + 1) * CHUNK_S {
        let t = sec as f64;
        for j in 0..N_ATTACKERS {
            // 4 reporters per attacker, rotating every second.
            out.push(campaign_report(
                ATTACKER_RSU_BASE + j * 4 + (sec as u32 % 4),
                ATTACKER_BASE + j,
                t + j as f64 * 0.002,
            ));
        }
        for v in 0..N_STALKED {
            for q in 0..STALKED_HZ {
                out.push(campaign_report(
                    STALKER_BASE + v,
                    STALKED_BASE + v,
                    t + q as f64 * 0.25 + v as f64 * 1e-4,
                ));
            }
        }
    }
    for v in 0..N_NOISE {
        let start = (v % 150) as f64;
        for k in 0..NOISE_REPORTS {
            let tk = start + k as f64 * NOISE_SPACING_S + v as f64 * 1e-6;
            if tk >= t0 && tk < t1 {
                out.push(campaign_report(
                    NOISE_RSU_BASE + v * 2 + k as u32 % 2,
                    NOISE_BASE + v,
                    tk,
                ));
            }
        }
    }
    out
}

const N_CHUNKS: usize = HORIZON_S / CHUNK_S;
const CAMPAIGN_REPORTS: usize = HORIZON_S
    * (N_ATTACKERS as usize + N_STALKED as usize * STALKED_HZ)
    + N_NOISE as usize * NOISE_REPORTS;

/// A conviction's full bit pattern, for set comparison across ingest
/// orders (the batch path merges per shard, so sequences may reorder but
/// the sorted multiset must match serial exactly).
type ConvKey = (u32, u64, usize, usize, u32, bool);

fn conv_key(suspect: VehicleId, rec: &RevocationRecord, extension: bool) -> ConvKey {
    (
        suspect.0,
        rec.revoked_at.to_bits(),
        rec.reporter_count,
        rec.report_count,
        rec.mean_margin.to_bits(),
        extension,
    )
}

/// The seed authority this PR replaced: every report retained in a
/// per-suspect `VecDeque`, reporter set and mean margin rebuilt from the
/// whole queue on every ingest, reports about actively revoked suspects
/// dropped (the lapse bug — a time-limited revocation under continuous
/// misbehavior expires and the vehicle rejoins until re-corroborated).
struct NaiveAuthority {
    policy: AuthorityPolicy,
    queues: HashMap<VehicleId, VecDeque<Mbr>>,
    crl: HashMap<VehicleId, RevocationRecord>,
    convictions: u64,
}

impl NaiveAuthority {
    fn new(policy: AuthorityPolicy) -> Self {
        NaiveAuthority {
            policy,
            queues: HashMap::new(),
            crl: HashMap::new(),
            convictions: 0,
        }
    }

    fn ingest(&mut self, report: &Mbr) {
        if report.validate(self.policy.evidence_len).is_err() {
            return;
        }
        let t = report.timestamp;
        if let Some(rec) = self.crl.get(&report.suspect) {
            let active = match self.policy.revocation_validity_s {
                None => true,
                Some(v) => t - rec.revoked_at <= v,
            };
            if active {
                return;
            }
        }
        let (convict, reporters, reports, mean_margin) = {
            let q = self.queues.entry(report.suspect).or_default();
            q.push_back(report.clone());
            while q
                .front()
                .is_some_and(|r| r.timestamp < t - self.policy.window_s)
            {
                q.pop_front();
            }
            let reporters: HashSet<VehicleId> = q.iter().map(|r| r.reporter).collect();
            let mean = q.iter().map(|r| r.margin()).sum::<f32>() / q.len() as f32;
            (
                reporters.len() >= self.policy.min_reporters && q.len() >= self.policy.min_reports,
                reporters.len(),
                q.len(),
                mean,
            )
        };
        if convict {
            self.crl.insert(
                report.suspect,
                RevocationRecord {
                    revoked_at: t,
                    reporter_count: reporters,
                    report_count: reports,
                    mean_margin,
                },
            );
            self.queues.remove(&report.suspect);
            self.convictions += 1;
        }
    }

    /// Reports currently retained across all suspect queues.
    fn retained(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }
}

/// Runs the authority benchmark on a trained harness and writes
/// `results/BENCH_authority.json`.
pub fn run(harness: &mut Harness, vehicles: usize, duration_s: f64) {
    // Phase 1 needs the fleet live and past window warmup long enough for
    // persistent attackers to flag across several reporter rotations.
    let duration_s = duration_s.max(6.0);
    println!(
        "Authority benchmark: {vehicles} vehicles x {duration_s:.1} s live loop, \
         then {CAMPAIGN_REPORTS} synthetic campaign reports"
    );
    harness
        .pipeline
        .compile_int8()
        .expect("int8 backend compiles");
    let k = harness.pipeline.vehigan.k();
    let members: Vec<usize> = (0..k).collect();

    // --- Phase 1: StreamServer escalations as the report source. ---
    let fleet = city_fleet(vehicles, duration_s, 11);
    let (stream, attackers) = mixed_stream(&fleet, 29, ATTACKER_FRACTION);
    let ranges = slice_ranges(&stream);
    assert!(!ranges.is_empty(), "empty stream; raise --duration");
    let every = (1.0 / ATTACKER_FRACTION) as usize;
    let attacker_ids: HashSet<VehicleId> = fleet
        .iter()
        .enumerate()
        .filter(|(i, _)| i % every == 0)
        .map(|(_, tr)| tr.id)
        .collect();
    println!(
        "traffic: {} BSMs from {vehicles} vehicles ({attackers} attackers), {} tick slices",
        stream.len(),
        ranges.len()
    );

    let mut server = StreamServer::new(
        &harness.pipeline.vehigan,
        harness.pipeline.scaler.clone(),
        ServerConfig {
            n_shards: 4,
            policy: EscalationPolicy::Always,
            members: Some(members),
            guard: IngestGuard::rsu(),
            reporter: Some(VehicleId(RSU_BASE)),
            ..ServerConfig::default()
        },
    )
    .expect("server builds");
    let live_policy = AuthorityPolicy {
        min_reporters: 2,
        min_reports: 3,
        window_s: 60.0,
        evidence_len: 10 * harness.pipeline.scaler.width(),
        revocation_validity_s: None,
    };
    let mut live = MisbehaviorAuthority::new(live_policy);
    let mut all_reports: Vec<Mbr> = Vec::new();
    let mut cursor = 0usize;
    let mut tick = 0u64;
    let mut drain_ticks = 0u32;
    loop {
        let (start, end) = match ranges.get(cursor) {
            Some(r) => {
                cursor += 1;
                (r.start, r.end)
            }
            None => {
                if server.pending_windows() == 0 || drain_ticks >= 4096 {
                    break;
                }
                drain_ticks += 1;
                (stream.len(), stream.len())
            }
        };
        // The covering RSU hands off every tick: corroboration must come
        // from genuinely distinct observer identities.
        server.set_reporter(Some(VehicleId(RSU_BASE + (tick % N_RSUS as u64) as u32)));
        server.ingest_batch(&stream[start..end]);
        let _ = server.tick().expect("tick scores");
        let reports = server.take_reports();
        if !reports.is_empty() {
            live.ingest_batch(&reports);
            all_reports.extend(reports);
        }
        tick += 1;
    }
    assert_eq!(server.pending_windows(), 0, "service failed to drain");

    // Serial replay of the same report sequence must land on the same
    // authority bit for bit.
    let mut replay = MisbehaviorAuthority::new(live_policy);
    for r in &all_reports {
        let _ = replay.ingest_ref(r);
    }
    let p1_stats = live.stats();
    let p1_serial_identical = live.crl() == replay.crl()
        && live.evidence_fingerprint() == replay.evidence_fingerprint()
        && p1_stats == replay.stats();
    let p1_attacker_convictions = live
        .crl()
        .iter()
        .filter(|(v, _)| attacker_ids.contains(v))
        .count();
    let p1_honest_convictions = live.crl().len() - p1_attacker_convictions;
    println!(
        "phase1: {} reports emitted, {} accepted / {} rejected, {} convictions \
         ({p1_attacker_convictions} attackers, {p1_honest_convictions} honest), serial replay identical: {p1_serial_identical}",
        all_reports.len(),
        p1_stats.accepted,
        p1_stats.rejected,
        p1_stats.convictions
    );

    // --- Phase 2: the 1M-report campaign, three ways. ---
    let policy = campaign_policy();

    // Serial reference: per-report `ingest_ref`.
    let mut serial = MisbehaviorAuthority::new(policy);
    let mut serial_convs: Vec<ConvKey> = Vec::new();
    let mut serial_s = 0.0f64;
    for c in 0..N_CHUNKS {
        let chunk = campaign_chunk(c);
        let t0 = Instant::now();
        for r in &chunk {
            match serial.ingest_ref(r) {
                IngestOutcome::Revoked(rec) => serial_convs.push(conv_key(r.suspect, &rec, false)),
                IngestOutcome::Extended(rec) => serial_convs.push(conv_key(r.suspect, &rec, true)),
                _ => {}
            }
        }
        serial_s += t0.elapsed().as_secs_f64();
    }

    // Sharded pipeline path, with an RSU mirror syncing by CRL delta.
    let mut sharded = MisbehaviorAuthority::new(policy);
    let mut sharded_convs: Vec<ConvKey> = Vec::new();
    let mut mirror = CertificateRevocationList::new(policy.revocation_validity_s);
    let mut snapshot_deltas = 0usize;
    let mut sharded_s = 0.0f64;
    let mut campaign_total = 0usize;
    for c in 0..N_CHUNKS {
        let chunk = campaign_chunk(c);
        campaign_total += chunk.len();
        let t0 = Instant::now();
        let br = sharded.ingest_batch(&chunk);
        sharded_s += t0.elapsed().as_secs_f64();
        for conv in &br.convictions {
            sharded_convs.push(conv_key(conv.suspect, &conv.record, conv.extension));
        }
        let delta = sharded.crl().delta_since(mirror.seq());
        snapshot_deltas += delta.snapshot as usize;
        mirror.apply_delta(&delta);
    }
    assert_eq!(campaign_total, CAMPAIGN_REPORTS, "campaign size drifted");

    // The seed path, same reports.
    let mut naive = NaiveAuthority::new(policy);
    let mut naive_s = 0.0f64;
    let mut naive_peak_retained = 0usize;
    for c in 0..N_CHUNKS {
        let chunk = campaign_chunk(c);
        let t0 = Instant::now();
        for r in &chunk {
            naive.ingest(r);
        }
        naive_s += t0.elapsed().as_secs_f64();
        naive_peak_retained = naive_peak_retained.max(naive.retained());
    }

    // Bitwise-identical conviction sets (order may differ across the
    // shard merge, the multiset may not).
    serial_convs.sort_unstable();
    sharded_convs.sort_unstable();
    let identical = serial_convs == sharded_convs
        && serial.crl() == sharded.crl()
        && serial.evidence_fingerprint() == sharded.evidence_fingerprint()
        && serial.stats() == sharded.stats();

    let stats = sharded.stats();
    let crl = sharded.crl();
    let honest_revocations = (0..N_STALKED)
        .map(|v| VehicleId(STALKED_BASE + v))
        .chain((0..N_NOISE).map(|v| VehicleId(NOISE_BASE + v)))
        .filter(|v| crl.record(*v).is_some())
        .count();
    let only_attackers = crl
        .iter()
        .all(|(v, _)| (ATTACKER_BASE..ATTACKER_BASE + N_ATTACKERS).contains(&v.0));
    // Continuous misbehavior must keep every time-limited revocation
    // alive through the whole horizon (the lapse fix).
    let attackers_active_at_end = (0..N_ATTACKERS)
        .filter(|j| crl.is_revoked(VehicleId(ATTACKER_BASE + j), HORIZON_S as f64))
        .count();
    let mirror_ok = mirror == *crl;

    let serial_rps = CAMPAIGN_REPORTS as f64 / serial_s;
    let sharded_rps = CAMPAIGN_REPORTS as f64 / sharded_s;
    let naive_rps = CAMPAIGN_REPORTS as f64 / naive_s;
    let speedup = sharded_rps / naive_rps;

    let state_bytes = std::mem::size_of::<SuspectEvidence>();
    let suspects = sharded.pending_suspects();
    let max_suspects = (N_ATTACKERS + N_STALKED + N_NOISE) as usize;
    let naive_report_bytes = std::mem::size_of::<Mbr>() + EV_LEN * std::mem::size_of::<f32>();
    let bounded_memory = state_bytes <= 512 && suspects <= max_suspects;

    println!(
        "phase2: {CAMPAIGN_REPORTS} reports — serial {serial_rps:.0}/s, sharded {sharded_rps:.0}/s, \
         naive {naive_rps:.0}/s ({speedup:.1}x)"
    );
    println!(
        "phase2: {} convictions ({} extensions), {} CRL entries, honest revocations {honest_revocations}, \
         {attackers_active_at_end}/{N_ATTACKERS} attackers still revoked at t={HORIZON_S}",
        stats.convictions,
        stats.extensions,
        crl.len()
    );
    println!(
        "phase2: {suspects} open suspects x {state_bytes} B evidence vs naive peak \
         {naive_peak_retained} retained reports x {naive_report_bytes} B; mirror synced over \
         {N_CHUNKS} deltas ({snapshot_deltas} snapshots), seq {}",
        crl.seq()
    );

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"authority\",\n");
    json.push_str(&format!(
        "  \"phase1\": {{\"vehicles\": {vehicles}, \"duration_s\": {duration_s}, \"bsms\": {}, \"attackers\": {attackers}, \"rsus\": {N_RSUS}, \"reports\": {}, \"accepted\": {}, \"rejected\": {}, \"convictions\": {}, \"attacker_convictions\": {p1_attacker_convictions}, \"honest_convictions\": {p1_honest_convictions}, \"serial_identical\": {p1_serial_identical}}},\n",
        stream.len(),
        all_reports.len(),
        p1_stats.accepted,
        p1_stats.rejected,
        p1_stats.convictions,
    ));
    json.push_str(&format!(
        "  \"phase2\": {{\"reports\": {CAMPAIGN_REPORTS}, \"horizon_s\": {HORIZON_S}, \"attackers\": {N_ATTACKERS}, \"stalked\": {N_STALKED}, \"noise_vehicles\": {N_NOISE}, \"window_s\": {}, \"validity_s\": {}, \"serial_rps\": {serial_rps:.0}, \"sharded_rps\": {sharded_rps:.0}, \"naive_rps\": {naive_rps:.0}, \"speedup\": {speedup:.2}, \"convictions\": {}, \"extensions\": {}, \"crl_entries\": {}, \"crl_seq\": {}, \"honest_revocations\": {honest_revocations}, \"attackers_active_at_end\": {attackers_active_at_end}, \"naive_convictions\": {}, \"pending_suspects\": {suspects}, \"state_bytes_per_suspect\": {state_bytes}, \"naive_peak_retained\": {naive_peak_retained}, \"naive_report_bytes\": {naive_report_bytes}, \"snapshot_deltas\": {snapshot_deltas}, \"mirror_ok\": {mirror_ok}}},\n",
        policy.window_s,
        policy.revocation_validity_s.unwrap_or(0.0),
        stats.convictions,
        stats.extensions,
        crl.len(),
        crl.seq(),
        naive.convictions,
    ));
    json.push_str(&format!(
        "  \"gates\": {{\"speedup_target\": {SPEEDUP_TARGET}, \"phase1_reports_positive\": {}, \"phase1_rejected_zero\": {}, \"phase1_convicted\": {}, \"phase1_serial_identical\": {p1_serial_identical}, \"sharded_matches_serial\": {identical}, \"speedup_ok\": {}, \"zero_honest_revocations\": {}, \"no_lapse\": {}, \"bounded_memory\": {bounded_memory}, \"crl_mirror_ok\": {mirror_ok}, \"drained\": true}}\n}}\n",
        !all_reports.is_empty(),
        p1_stats.rejected == 0,
        p1_stats.convictions > 0,
        speedup >= SPEEDUP_TARGET,
        honest_revocations == 0 && only_attackers,
        attackers_active_at_end == N_ATTACKERS as usize,
    ));
    let path = results_dir().join("BENCH_authority.json");
    std::fs::write(&path, json).expect("write BENCH_authority.json");
    eprintln!("[harness] wrote {}", path.display());

    // --- Gates (ISSUE acceptance criteria). ---
    assert!(
        !all_reports.is_empty(),
        "server emitted no misbehavior reports"
    );
    assert_eq!(
        p1_stats.rejected, 0,
        "server-emitted reports failed authority validation"
    );
    assert!(
        p1_stats.convictions > 0,
        "rotating RSU coverage failed to corroborate any conviction"
    );
    assert!(
        p1_serial_identical,
        "phase-1 per-tick batches diverged from serial replay"
    );
    assert!(
        identical,
        "sharded campaign diverged from serial ({} vs {} convictions)",
        sharded_convs.len(),
        serial_convs.len()
    );
    assert!(
        speedup >= SPEEDUP_TARGET,
        "evidence pipeline speedup {speedup:.2}x below the {SPEEDUP_TARGET}x target \
         (sharded {sharded_rps:.0}/s vs naive {naive_rps:.0}/s)"
    );
    assert!(
        honest_revocations == 0 && only_attackers,
        "honest vehicles revoked: {honest_revocations} victims on the CRL"
    );
    assert_eq!(
        attackers_active_at_end, N_ATTACKERS as usize,
        "time-limited revocations lapsed under continuous misbehavior"
    );
    assert!(
        bounded_memory,
        "authority memory unbounded: {state_bytes} B/suspect, {suspects} suspects"
    );
    assert!(mirror_ok, "CRL delta mirror diverged from the authority");
    println!(
        "gates: reports ok, validation ok, conviction ok, serial==batch ok, \
         speedup {speedup:.1}x >= {SPEEDUP_TARGET}x ok, zero honest ok, no lapse ok, \
         bounded memory ok, mirror ok"
    );
}
