//! Fig 5: adversarial robustness of single-WGAN VEHIGAN₁¹.
//!
//! - **5a** — FPR of the top-10 models under white-box AFP attacks vs ε,
//!   against a random-noise control of equal magnitude;
//! - **5b** — FNR under AFN attacks vs ε (intrinsic robustness: scores
//!   stay above τ);
//! - **5c** — transferability: AFP samples crafted on the best model
//!   (white-box) evaluated on the other models (black-box).

use crate::harness::{rate_above, write_csv, Harness};
use rand::rngs::StdRng;
use rand::SeedableRng;
use vehigan_core::adversarial::{afn_attack, afp_attack, random_noise};
use vehigan_tensor::Tensor;

/// The ε sweep of §V-B (fractional change in scaled sensor values).
pub const EPSILONS: [f32; 6] = [0.0, 0.002, 0.005, 0.01, 0.015, 0.02];

/// Cap on windows per adversarial evaluation (gradient passes are the
/// expensive part).
const MAX_WINDOWS: usize = 256;

/// Per-member thresholds at the 99th percentile of benign **test**
/// scores: every model starts the ε-sweep at exactly 1% FPR, the paper's
/// operating point (§V-B), independent of small-scale train→test
/// calibration drift.
pub fn test_thresholds(harness: &mut Harness, benign: &vehigan_tensor::Tensor) -> Vec<f32> {
    let m = harness.pipeline.vehigan.m();
    (0..m)
        .map(|i| {
            let member = &mut harness.pipeline.vehigan.members_mut()[i];
            vehigan_metrics::percentile(&member.wgan.score_batch(benign), 99.0)
        })
        .collect()
}

fn subsample(x: &Tensor, limit: usize) -> Tensor {
    let n = x.shape()[0];
    if n <= limit {
        return x.clone();
    }
    let stride = n as f64 / limit as f64;
    let indices: Vec<usize> = (0..limit).map(|i| (i as f64 * stride) as usize).collect();
    x.take(&indices)
}

/// Benign test windows capped for gradient work.
pub fn benign_sample(harness: &Harness) -> Tensor {
    subsample(&harness.benign_windows.x, MAX_WINDOWS)
}

/// Malicious test windows pooled across attacks, capped.
pub fn malicious_sample(harness: &Harness) -> Tensor {
    let per_attack = (MAX_WINDOWS / harness.attacks.len()).max(4);
    let mut parts: Vec<Tensor> = Vec::new();
    for ds in &harness.attack_windows {
        let malicious = ds.malicious_indices();
        let take: Vec<usize> = malicious.into_iter().take(per_attack).collect();
        if !take.is_empty() {
            parts.push(ds.x.take(&take));
        }
    }
    let total: usize = parts.iter().map(|p| p.shape()[0]).sum();
    let mut data = Vec::with_capacity(total * 120);
    for p in &parts {
        data.extend_from_slice(p.as_slice());
    }
    let mut shape = parts[0].shape().to_vec();
    shape[0] = total;
    Tensor::from_vec(data, &shape)
}

/// Fig 5a: white-box AFP FPR per model vs ε + random-noise control.
pub fn run_5a(harness: &mut Harness) {
    let benign = benign_sample(harness);
    let m = harness.pipeline.vehigan.m();
    let taus = test_thresholds(harness, &benign);
    let mut rng = StdRng::seed_from_u64(55);
    println!("Fig 5a — FPR under white-box AFP attack (rows ε, one col per model, last col noise)");
    let mut rows = Vec::new();
    let mut fpr_at_001 = 0.0;
    for &eps in &EPSILONS {
        let mut line = format!("ε={eps:<6}");
        let mut csv = format!("{eps}");
        let mut sum = 0.0;
        for (i, &tau) in taus.iter().enumerate() {
            let member = &mut harness.pipeline.vehigan.members_mut()[i];
            let adv = afp_attack(member.wgan.critic_mut(), &benign, eps);
            let scores = member.wgan.score_batch(&adv);
            let fpr = rate_above(&scores, tau);
            sum += fpr;
            line.push_str(&format!(" {fpr:>6.3}"));
            csv.push_str(&format!(",{fpr:.4}"));
        }
        if (eps - 0.01).abs() < 1e-6 {
            fpr_at_001 = sum / m as f64;
        }
        // Random-noise control averaged across models.
        let noisy = random_noise(&benign, eps, &mut rng);
        let mut noise_sum = 0.0;
        for (i, &tau) in taus.iter().enumerate() {
            let member = &mut harness.pipeline.vehigan.members_mut()[i];
            let scores = member.wgan.score_batch(&noisy);
            noise_sum += rate_above(&scores, tau);
        }
        let noise_fpr = noise_sum / m as f64;
        line.push_str(&format!("   noise={noise_fpr:.3}"));
        csv.push_str(&format!(",{noise_fpr:.4}"));
        println!("{line}");
        rows.push(csv);
    }
    let header = format!(
        "epsilon,{},noise",
        (0..m)
            .map(|i| format!("model{i}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    write_csv("fig5a_afp_whitebox.csv", &header, &rows);
    println!(
        "\nmean FPR at ε=0.01: {fpr_at_001:.3} — white-box AFP cripples single-WGAN VEHIGAN₁¹ (paper: ≈50%+)"
    );
}

/// Fig 5b: AFN FNR per model vs ε (expected: flat / intrinsically robust).
pub fn run_5b(harness: &mut Harness) {
    let malicious = malicious_sample(harness);
    let benign = benign_sample(harness);
    let m = harness.pipeline.vehigan.m();
    let taus = test_thresholds(harness, &benign);
    println!("Fig 5b — FNR under white-box AFN attack (rows ε, one col per model)");
    let mut rows = Vec::new();
    let mut base_fnr = 0.0;
    let mut max_fnr: f64 = 0.0;
    for &eps in &EPSILONS {
        let mut line = format!("ε={eps:<6}");
        let mut csv = format!("{eps}");
        let mut sum = 0.0;
        for (i, &tau) in taus.iter().enumerate() {
            let member = &mut harness.pipeline.vehigan.members_mut()[i];
            let adv = afn_attack(member.wgan.critic_mut(), &malicious, eps);
            let scores = member.wgan.score_batch(&adv);
            // FNR: malicious windows whose score fails to exceed τ.
            let fnr = 1.0 - rate_above(&scores, tau);
            sum += fnr;
            line.push_str(&format!(" {fnr:>6.3}"));
            csv.push_str(&format!(",{fnr:.4}"));
        }
        let mean = sum / m as f64;
        if eps == 0.0 {
            base_fnr = mean;
        }
        max_fnr = max_fnr.max(mean);
        println!("{line}");
        rows.push(csv);
    }
    let header = format!(
        "epsilon,{}",
        (0..m)
            .map(|i| format!("model{i}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    write_csv("fig5b_afn_whitebox.csv", &header, &rows);
    println!(
        "\nFNR moves from {base_fnr:.3} (ε=0) to at most {max_fnr:.3} across the sweep — \
         AFN attacks stay ineffective (paper Fig 5b: intrinsic robustness)"
    );
}

/// Fig 5c: transfer attack — AFP samples from the best model applied to
/// all models.
pub fn run_5c(harness: &mut Harness) {
    let benign = benign_sample(harness);
    let m = harness.pipeline.vehigan.m();
    let taus = test_thresholds(harness, &benign);
    println!("Fig 5c — AFP transferability (surrogate = best model; rows ε; col 0 is white-box)");
    let mut rows = Vec::new();
    let mut wb_at_001 = 0.0;
    let mut bb_at_001 = 0.0;
    for &eps in &EPSILONS {
        // Craft on model 0 (highest ADS → "open-box").
        let adv = {
            let surrogate = &mut harness.pipeline.vehigan.members_mut()[0];
            afp_attack(surrogate.wgan.critic_mut(), &benign, eps)
        };
        let mut line = format!("ε={eps:<6}");
        let mut csv = format!("{eps}");
        let mut bb_sum = 0.0;
        for (i, &tau) in taus.iter().enumerate() {
            let member = &mut harness.pipeline.vehigan.members_mut()[i];
            let scores = member.wgan.score_batch(&adv);
            let fpr = rate_above(&scores, tau);
            if i == 0 {
                if (eps - 0.01).abs() < 1e-6 {
                    wb_at_001 = fpr;
                }
            } else {
                bb_sum += fpr;
            }
            line.push_str(&format!(" {fpr:>6.3}"));
            csv.push_str(&format!(",{fpr:.4}"));
        }
        if (eps - 0.01).abs() < 1e-6 {
            bb_at_001 = bb_sum / (m - 1) as f64;
        }
        println!("{line}");
        rows.push(csv);
    }
    let header = format!(
        "epsilon,whitebox,{}",
        (1..m)
            .map(|i| format!("blackbox{i}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    write_csv("fig5c_afp_transfer.csv", &header, &rows);
    println!(
        "\nat ε=0.01: white-box FPR {wb_at_001:.3} vs mean black-box FPR {bb_at_001:.3} — \
         adversarial samples do not transfer across WGANs (paper Fig 5c)"
    );
}
