//! Int8 backend benchmark: fused k-member ensemble latency vs the float
//! path, plus quantization-error accounting on the Table III campaign.
//!
//! Run via `vehigan-bench quant --scale quick` (trains the quick system,
//! prints a summary, writes `results/BENCH_quant.json`) or the criterion
//! bench `cargo bench -p vehigan-bench --bench quant` for statistical
//! rigor on the latency half.
//!
//! The run **gates** its own acceptance criteria and panics when they
//! fail (so the CI smoke step catches regressions):
//!
//! - fused int8 `k`-member single-snapshot scoring ≥ 2× faster than the
//!   float `score_with_members` path (Fig-8 scale, `k = deploy_k`);
//! - max |AUROC(int8) − AUROC(f32)| over the 35-attack Table III campaign
//!   ≤ 0.01;
//! - dispatched and portable int8 kernels agree bitwise on a
//!   critic-shaped GEMM (i32 accumulator equality).

use crate::harness::{results_dir, Harness};
use std::time::Instant;
use vehigan_metrics::auroc;
use vehigan_tensor::gemm::{gemm_i8, gemm_i8_portable, PackedI8};
use vehigan_tensor::Tensor;

/// Maximum tolerated AUROC drift of the int8 path vs f32 (ISSUE gate).
pub const AUROC_DELTA_BUDGET: f64 = 0.01;

/// Minimum required fused-ensemble speedup over the float path (ISSUE
/// gate).
pub const MIN_SPEEDUP: f64 = 2.0;

/// Median wall-clock milliseconds per call (median rejects scheduler
/// noise on shared VMs).
fn time_ms(mut f: impl FnMut(), reps: usize, trials: usize) -> f64 {
    for _ in 0..3 {
        f(); // warm-up
    }
    let mut samples: Vec<f64> = (0..trials)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..reps {
                f();
            }
            start.elapsed().as_secs_f64() * 1000.0 / reps as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Asserts that the dispatched (possibly AVX2) and portable int8 kernels
/// produce bitwise-identical i32 accumulators on a critic-shaped GEMM.
fn assert_kernels_bitwise_identical() {
    let (m, k, n) = (120usize, 3840usize, 8usize); // the fused dense shape
    let a: Vec<i8> = (0..m * k).map(|i| ((i * 37 + 11) % 255) as i8).collect();
    let b: Vec<i8> = (0..k * n).map(|i| ((i * 73 + 5) % 255) as i8).collect();
    let packed = PackedI8::pack(k, n, &b);
    let mut dispatched = vec![0i32; m * n];
    let mut portable = vec![0i32; m * n];
    gemm_i8(m, &a, &packed, &mut dispatched);
    gemm_i8_portable(m, &a, &packed, &mut portable);
    assert_eq!(
        dispatched, portable,
        "dispatched and portable int8 kernels must agree bitwise"
    );
    println!("kernel check: dispatched == portable bitwise on ({m},{k},{n}) ✓");
}

/// Runs the quant benchmark on a trained harness and writes
/// `results/BENCH_quant.json`.
pub fn run(harness: &mut Harness) {
    println!("Int8 backend benchmark (fused k-member ensemble vs float path)");
    assert_kernels_bitwise_identical();

    harness
        .pipeline
        .compile_int8()
        .expect("int8 backend compiles");
    let backend_desc = format!("{:?}", harness.pipeline.vehigan.int8_backend().unwrap());
    println!("{backend_desc}");

    let vehigan = &harness.pipeline.vehigan;
    let k = vehigan.k();
    let m = vehigan.m();
    let subset: Vec<usize> = (0..k).collect();
    let all: Vec<usize> = (0..m).collect();
    let int8_bytes = vehigan.int8_backend().unwrap().weight_bytes();

    // --- Fig-8-scale latency: one snapshot through k deployed members. ---
    let shape = harness.benign_windows.x.shape().to_vec();
    let len = shape[1] * shape[2] * shape[3];
    let single = Tensor::from_vec(
        harness.benign_windows.x.as_slice()[..len].to_vec(),
        &[1, shape[1], shape[2], shape[3]],
    );
    let f32_single_ms = time_ms(
        || {
            vehigan.score_with_members(&subset, &single).unwrap();
        },
        20,
        7,
    );
    let int8_single_ms = time_ms(
        || {
            vehigan.score_with_members_int8(&subset, &single).unwrap();
        },
        20,
        7,
    );
    let single_speedup = f32_single_ms / int8_single_ms;

    // --- Batch throughput: a 64-snapshot batch through the same k. ---
    let batch_n = 64.min(harness.benign_windows.x.shape()[0]);
    let batch = Tensor::from_vec(
        harness.benign_windows.x.as_slice()[..batch_n * len].to_vec(),
        &[batch_n, shape[1], shape[2], shape[3]],
    );
    let f32_batch_ms = time_ms(
        || {
            vehigan.score_with_members(&subset, &batch).unwrap();
        },
        10,
        7,
    );
    let int8_batch_ms = time_ms(
        || {
            vehigan.score_with_members_int8(&subset, &batch).unwrap();
        },
        10,
        7,
    );
    let batch_speedup = f32_batch_ms / int8_batch_ms;

    println!(
        "{:>24} {:>12} {:>12} {:>9}",
        "case", "f32 (ms)", "int8 (ms)", "speedup"
    );
    println!(
        "{:>24} {f32_single_ms:>12.4} {int8_single_ms:>12.4} {single_speedup:>8.2}x",
        format!("snapshot k={k}")
    );
    println!(
        "{:>24} {f32_batch_ms:>12.4} {int8_batch_ms:>12.4} {batch_speedup:>8.2}x",
        format!("batch n={batch_n} k={k}")
    );

    // --- Quantization error: Table III AUROC, int8 vs f32, all m. ---
    let mut max_delta = 0.0f64;
    let mut mean_delta = 0.0f64;
    let mut worst_attack = String::new();
    let n_attacks = harness.attacks.len();
    for ai in 0..n_attacks {
        let ds = &harness.attack_windows[ai];
        let f32_scores = harness.ensemble_attack_scores(&all, ai);
        let int8_scores = harness
            .pipeline
            .vehigan
            .score_with_members_int8(&all, &ds.x)
            .unwrap()
            .scores;
        let f32_auroc = auroc(&f32_scores, &ds.labels);
        let int8_auroc = auroc(&int8_scores, &ds.labels);
        let delta = (f32_auroc - int8_auroc).abs();
        mean_delta += delta;
        if delta > max_delta {
            max_delta = delta;
            worst_attack = harness.attacks[ai].name().to_string();
        }
    }
    mean_delta /= n_attacks as f64;
    println!(
        "Table III AUROC drift over {n_attacks} attacks: mean {mean_delta:.5}, \
         max {max_delta:.5} ({worst_attack})"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"bench\": \"quant\",\n  \"k\": {k},\n  \"m\": {m},\n  \"int8_weight_bytes\": {int8_bytes},\n"
    ));
    json.push_str("  \"cases\": [\n");
    json.push_str(&format!(
        "    {{\"name\": \"snapshot_k{k}\", \"f32_ms\": {f32_single_ms:.5}, \"int8_ms\": {int8_single_ms:.5}, \"speedup\": {single_speedup:.2}}},\n"
    ));
    json.push_str(&format!(
        "    {{\"name\": \"batch{batch_n}_k{k}\", \"f32_ms\": {f32_batch_ms:.5}, \"int8_ms\": {int8_batch_ms:.5}, \"speedup\": {batch_speedup:.2}}}\n"
    ));
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"auroc\": {{\"attacks\": {n_attacks}, \"mean_delta\": {mean_delta:.5}, \"max_delta\": {max_delta:.5}, \"worst_attack\": \"{worst_attack}\", \"budget\": {AUROC_DELTA_BUDGET}}},\n"
    ));
    json.push_str(&format!(
        "  \"gates\": {{\"min_speedup\": {MIN_SPEEDUP}, \"speedup_ok\": {}, \"auroc_ok\": {}}}\n}}\n",
        single_speedup >= MIN_SPEEDUP,
        max_delta <= AUROC_DELTA_BUDGET,
    ));
    let path = results_dir().join("BENCH_quant.json");
    std::fs::write(&path, json).expect("write BENCH_quant.json");
    eprintln!("[harness] wrote {}", path.display());

    // --- Gates (ISSUE acceptance criteria). ---
    assert!(
        max_delta <= AUROC_DELTA_BUDGET,
        "int8 AUROC drift {max_delta:.5} exceeds the {AUROC_DELTA_BUDGET} budget ({worst_attack})"
    );
    assert!(
        single_speedup >= MIN_SPEEDUP,
        "fused int8 ensemble speedup {single_speedup:.2}x below the required {MIN_SPEEDUP}x"
    );
    println!(
        "gates: speedup {single_speedup:.2}x ≥ {MIN_SPEEDUP}x ✓, \
         AUROC drift {max_delta:.5} ≤ {AUROC_DELTA_BUDGET} ✓"
    );
}
