//! Hyperparameter probe (not a paper figure): trains single WGANs across
//! epoch/clip/lr settings and reports detection power, threshold margins,
//! and FGSM sensitivity. Used to calibrate the quick-scale defaults.

use crate::harness::{rate_above, Scale};
use vehigan_core::adversarial::afp_attack;
use vehigan_core::{LipschitzMode, Wgan, WganConfig};
use vehigan_features::{build_windows, fit_scaler, WindowConfig};
use vehigan_metrics::{auroc, percentile};
use vehigan_sim::TrafficSimulator;
use vehigan_vasp::{Attack, DatasetBuilder, DatasetConfig};

/// Trains single WGANs over a small config sweep and prints diagnostics.
pub fn run() {
    let pc = Scale::Quick.pipeline_config();
    let fleet = TrafficSimulator::new(pc.sim.clone()).run();
    let n = fleet.len();
    let train_fleet = &fleet[..n / 2];
    let test_fleet = &fleet[n / 2..];
    let builder = DatasetBuilder::new(train_fleet, DatasetConfig::default());
    let benign = builder.benign_dataset();
    let scaler = fit_scaler(&benign, pc.window.representation);
    let wcfg = WindowConfig {
        stride: 4,
        ..WindowConfig::default()
    };
    let train = build_windows(&benign, wcfg, &scaler);
    let test_builder = DatasetBuilder::new(test_fleet, DatasetConfig::default());
    let test_benign = build_windows(&test_builder.benign_dataset(), wcfg, &scaler);
    let attacks = [
        "RandomPosition",
        "RandomSpeed",
        "OppositeHeading",
        "RandomYawRate",
        "HighHeadingYawRate",
        "ConstantSpeed",
    ];
    let test_sets: Vec<_> = attacks
        .iter()
        .map(|n| {
            let a = Attack::by_name(n).unwrap();
            build_windows(&test_builder.attack_dataset(a), wcfg, &scaler)
        })
        .collect();
    eprintln!("[probe] {} train windows", train.len());

    println!(
        "{:>5} {:>9} {:>7} {:>7} {:>9} {:>8} {:>8} {:>8} {:>7}",
        "ep", "lipschitz", "lr", "layers", "auroc", "fnr@99", "fpr@99", "afpFPR", "secs"
    );
    for &(epochs, lipschitz, gain, lr, layers) in &[
        (
            4usize,
            LipschitzMode::GradientPenalty { lambda: 10.0 },
            4.0f32,
            1e-4f32,
            5usize,
        ),
        (
            4,
            LipschitzMode::GradientPenalty { lambda: 10.0 },
            4.0,
            3e-4,
            5,
        ),
        (
            8,
            LipschitzMode::GradientPenalty { lambda: 10.0 },
            4.0,
            1e-4,
            5,
        ),
        (
            4,
            LipschitzMode::GradientPenalty { lambda: 3.0 },
            4.0,
            1e-4,
            5,
        ),
        (4, LipschitzMode::Spectral, 4.0, 1e-4, 5),
    ] {
        let n_critic = 2usize;
        let start = std::time::Instant::now();
        let config = WganConfig {
            noise_dim: 32,
            layers,
            epochs,
            batch_size: 64,
            learning_rate: lr,
            lipschitz,
            g_output_gain: gain,
            n_critic,
            seed: 7,
            ..WganConfig::default()
        };
        let mut wgan = Wgan::new(config);
        wgan.train(&train.x);
        let train_scores = wgan.score_batch(&train.x);
        let tau = percentile(&train_scores, 99.0);
        let benign_scores = wgan.score_batch(&test_benign.x);
        let fpr = rate_above(&benign_scores, tau);

        let mut auroc_sum = 0.0;
        let mut fnr_sum = 0.0;
        for ds in &test_sets {
            let scores = wgan.score_batch(&ds.x);
            auroc_sum += auroc(&scores, &ds.labels);
            let mal: Vec<f32> = scores
                .iter()
                .zip(&ds.labels)
                .filter(|(_, &l)| l)
                .map(|(&s, _)| s)
                .collect();
            fnr_sum += 1.0 - rate_above(&mal, tau);
        }
        // FGSM AFP on a benign subsample.
        let idx: Vec<usize> = (0..test_benign.len().min(200)).collect();
        let xb = test_benign.x.take(&idx);
        let adv = afp_attack(wgan.critic_mut(), &xb, 0.01);
        let afp_fpr = rate_above(&wgan.score_batch(&adv), tau);

        println!(
            "{epochs:>5} {:>9} gain={gain:<4} {lr:>7} {layers:>7} {:>9.3} {:>8.3} {fpr:>8.3} {afp_fpr:>8.3} {:>7.1}",
            format!("{lipschitz:?}"),
            auroc_sum / test_sets.len() as f64,
            fnr_sum / test_sets.len() as f64,
            start.elapsed().as_secs_f64(),
        );
    }
}
