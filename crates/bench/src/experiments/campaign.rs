//! Campaign data-plane benchmark: the pre-data-plane serial build vs
//! the cache-aware [`CampaignPlane`].
//!
//! The serial baseline reproduces what `Harness::build` did before the
//! data plane landed — one monolithic `build_windows` per catalog
//! attack with the original allocation-heavy row scaling (per-row
//! `Vec<f64>` allocations, element-wise pushes), re-engineering the
//! shared benign ~75% of the fleet 35 times. Two successors are timed
//! against it:
//!
//! * `staged` — the current monolithic `build_windows` (allocation-free
//!   scaling straight into the window tensor), still once per attack;
//! * `plane` — the [`CampaignPlane`], which engineers each benign trace
//!   once and splices per-attack attacker fragments over the shared
//!   fragment cache.
//!
//! All three paths are checked for bitwise equality before any timing
//! is reported.
//!
//! Writes `results/BENCH_campaign.json`. Run via `vehigan-bench campaign
//! [--scale quick|paper]` or `cargo bench -p vehigan-bench --bench
//! campaign` (criterion harness).

use crate::harness::{results_dir, Scale};
use std::time::Instant;
use vehigan_core::CampaignPlane;
use vehigan_features::{
    build_windows, decompose_trace, fit_scaler, raw_trace, MinMaxScaler, Representation,
    WindowConfig, WindowDataset,
};
use vehigan_sim::TrafficSimulator;
use vehigan_tensor::Tensor;
use vehigan_vasp::{Attack, DatasetBuilder, MisbehaviorDataset};

/// Faithful copy of the window builder the harness used before the
/// campaign data plane: engineer into per-row `Vec<f64>`s, scale each
/// row into a fresh allocation, and push the window tensor element by
/// element into a growing `Vec`. Kept here (not in `vehigan-features`)
/// purely as the benchmark baseline.
pub fn seed_build_windows(
    dataset: &MisbehaviorDataset,
    config: WindowConfig,
    scaler: &MinMaxScaler,
) -> WindowDataset {
    let w = config.window;
    let f = config.representation.width();
    let mut data: Vec<f32> = Vec::new();
    let mut labels = Vec::new();
    let mut vehicles = Vec::new();
    for t in &dataset.traces {
        if t.trace.len() < 2 {
            continue;
        }
        let rows: Vec<Vec<f64>> = match config.representation {
            Representation::Engineered => decompose_trace(&t.trace)
                .into_iter()
                .map(|r| r.values.to_vec())
                .collect(),
            Representation::Raw => raw_trace(&t.trace)
                .into_iter()
                .map(|r| r.to_vec())
                .collect(),
        };
        let row_labels: Vec<bool> = t.labels.windows(2).map(|p| p[0] || p[1]).collect();
        if rows.len() < w {
            continue;
        }
        let scaled: Vec<Vec<f64>> = rows.iter().map(|r| scaler.transform_row(r)).collect();
        let mut start = 0;
        while start + w <= scaled.len() {
            for row in &scaled[start..start + w] {
                data.extend(row.iter().map(|&v| v as f32));
            }
            labels.push(row_labels[start..start + w].iter().any(|&l| l));
            vehicles.push(t.trace.id);
            start += config.stride;
        }
    }
    assert!(
        !labels.is_empty(),
        "no trace long enough for a window of {w}"
    );
    let n = labels.len();
    WindowDataset {
        x: Tensor::from_vec(data, &[n, w, f, 1]),
        labels,
        vehicles,
    }
}

/// Median wall-clock seconds over `trials` runs of `f` (each run's result
/// is returned once for the equality check).
fn median_secs<T>(trials: usize, mut f: impl FnMut() -> T) -> (f64, T) {
    assert!(trials >= 1);
    let mut samples = Vec::with_capacity(trials);
    let mut out = None;
    for _ in 0..trials {
        let start = Instant::now();
        let v = f();
        samples.push(start.elapsed().as_secs_f64());
        out = Some(v);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (samples[samples.len() / 2], out.expect("trials >= 1"))
}

fn total_windows(datasets: &[WindowDataset]) -> usize {
    datasets.iter().map(|d| d.len()).sum()
}

fn assert_identical(a: &[WindowDataset], b: &[WindowDataset], what: &str) {
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.x.as_slice(),
            y.x.as_slice(),
            "{what}, attack {i}: window bytes differ"
        );
        assert_eq!(x.labels, y.labels, "{what}, attack {i}: labels differ");
        assert_eq!(
            x.vehicles, y.vehicles,
            "{what}, attack {i}: vehicle ids differ"
        );
    }
}

/// Runs the benchmark at `scale`, prints a summary, and writes
/// `results/BENCH_campaign.json`.
///
/// # Panics
///
/// Panics if the staged or plane output is not bitwise identical to the
/// serial build — the speedup is only admissible if the data is the same.
pub fn run(scale: Scale) {
    let config = scale.pipeline_config();
    eprintln!("[campaign] simulating fleet at {scale:?} scale…");
    let fleet = TrafficSimulator::new(config.sim.clone()).run();
    let builder = DatasetBuilder::new(&fleet, config.dataset.clone());
    let scaler = fit_scaler(&builder.benign_dataset(), config.window.representation);
    let attacks = Attack::catalog();
    let trials = match scale {
        Scale::Quick => 5,
        Scale::Paper => 1,
    };

    // Every path builds the full 36-dataset evaluation set the harness
    // needs: one labelled dataset per catalog attack plus the benign
    // test dataset.
    eprintln!("[campaign] serial pre-data-plane build ({trials} trials)…");
    let (serial_secs, serial) = median_secs(trials, || {
        let mut sets: Vec<WindowDataset> = attacks
            .iter()
            .map(|&a| seed_build_windows(&builder.attack_dataset(a), config.window, &scaler))
            .collect();
        sets.push(seed_build_windows(
            &builder.benign_dataset(),
            config.window,
            &scaler,
        ));
        sets
    });

    eprintln!("[campaign] staged monolithic build ({trials} trials)…");
    let (staged_secs, staged) = median_secs(trials, || {
        let mut sets: Vec<WindowDataset> = attacks
            .iter()
            .map(|&a| build_windows(&builder.attack_dataset(a), config.window, &scaler))
            .collect();
        sets.push(build_windows(
            &builder.benign_dataset(),
            config.window,
            &scaler,
        ));
        sets
    });

    eprintln!("[campaign] campaign plane build ({trials} trials)…");
    let (plane_secs, plane) = median_secs(trials, || {
        let plane = CampaignPlane::new(&fleet, config.dataset.clone(), config.window, &scaler);
        let mut sets = plane.campaign(&attacks);
        sets.push(plane.benign_windows());
        sets
    });

    assert_identical(&serial, &staged, "staged vs serial");
    assert_identical(&serial, &plane, "plane vs serial");

    let windows = total_windows(&plane);
    let speedup = serial_secs / plane_secs;
    let staged_speedup = serial_secs / staged_secs;
    let serial_wps = windows as f64 / serial_secs;
    let plane_wps = windows as f64 / plane_secs;
    println!(
        "campaign data plane ({} attacks + benign, {windows} windows, bitwise identical)",
        attacks.len()
    );
    println!("  serial (pre-data-plane): {serial_secs:.3} s  ({serial_wps:.0} windows/s)");
    println!("  staged monolithic:       {staged_secs:.3} s  ({staged_speedup:.2}x)",);
    println!("  campaign plane:          {plane_secs:.3} s  ({plane_wps:.0} windows/s)");
    println!("  speedup (plane vs serial): {speedup:.2}x");

    let json = format!(
        "{{\n  \"bench\": \"campaign\",\n  \"scale\": \"{scale:?}\",\n  \
         \"attacks\": {},\n  \"vehicles\": {},\n  \"windows\": {windows},\n  \
         \"serial_secs\": {serial_secs:.6},\n  \"staged_secs\": {staged_secs:.6},\n  \
         \"plane_secs\": {plane_secs:.6},\n  \
         \"serial_windows_per_sec\": {serial_wps:.1},\n  \
         \"plane_windows_per_sec\": {plane_wps:.1},\n  \
         \"staged_speedup\": {staged_speedup:.3},\n  \
         \"speedup\": {speedup:.3},\n  \"bitwise_identical\": true\n}}\n",
        attacks.len(),
        fleet.len(),
    );
    let path = results_dir().join("BENCH_campaign.json");
    std::fs::write(&path, json).expect("write BENCH_campaign.json");
    eprintln!("[harness] wrote {}", path.display());
}
