//! GEMM kernel micro-benchmarks: blocked vs naive on critic-shaped
//! problems, plus the transpose-free backward kernels.
//!
//! Writes `results/BENCH_gemm.json` so future PRs have a perf trajectory
//! to compare against. Run via `vehigan-bench gemm` (quick, JSON output)
//! or `cargo bench -p vehigan-bench --bench gemm` (criterion harness with
//! statistical rigor).
//!
//! Shapes (all from the default `WganConfig`: 10×12 snapshots, 128-sample
//! batches):
//! - `critic_forward` — the final Dense layer of the critic,
//!   `[128, 120] · [120, 64]`, the ISSUE's ≥3× acceptance shape;
//! - `im2col_gemm` — a critic conv as its im2col product,
//!   `[128·10·12, 2·2·8] · [32, 16]`;
//! - `dense_backward_dw` — `dW = Xᵀ·dY` via `gemm_tn` vs
//!   transpose-then-naive;
//! - `dense_backward_dx` — `dX = dY·Wᵀ` via `gemm_nt` vs
//!   transpose-then-naive.

use crate::harness::results_dir;
use std::time::Instant;
use vehigan_tensor::gemm;

/// Which kernel pair a case compares.
#[derive(Clone, Copy)]
enum Kind {
    /// `gemm` vs `naive`.
    Nn,
    /// `gemm_nt` vs transpose-B-then-naive.
    Nt,
    /// `gemm_tn` vs transpose-A-then-naive.
    Tn,
}

struct Case {
    name: &'static str,
    m: usize,
    k: usize,
    n: usize,
    kind: Kind,
}

/// The benched shapes. Public callers go through [`run`].
const CASES: [Case; 4] = [
    Case {
        name: "critic_forward",
        m: 128,
        k: 120,
        n: 64,
        kind: Kind::Nn,
    },
    Case {
        name: "im2col_gemm",
        m: 15360,
        k: 32,
        n: 16,
        kind: Kind::Nn,
    },
    Case {
        name: "dense_backward_dw",
        m: 120,
        k: 128,
        n: 64,
        kind: Kind::Tn,
    },
    Case {
        name: "dense_backward_dx",
        m: 128,
        k: 64,
        n: 120,
        kind: Kind::Nt,
    },
];

/// Deterministic xorshift fill — no RNG dependency, same data every run.
fn fill(mut seed: u32, len: usize) -> Vec<f32> {
    (0..len)
        .map(|_| {
            seed ^= seed << 13;
            seed ^= seed >> 17;
            seed ^= seed << 5;
            (seed as f32 / u32::MAX as f32) - 0.5
        })
        .collect()
}

/// Median wall-clock seconds per call over `trials` timed trials of
/// `reps` calls each (median rejects scheduler noise on shared VMs).
fn time_per_call(mut f: impl FnMut(), reps: usize, trials: usize) -> f64 {
    f(); // warm-up
    let mut samples: Vec<f64> = (0..trials)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..reps {
                f();
            }
            start.elapsed().as_secs_f64() / reps as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

struct Measurement {
    name: &'static str,
    m: usize,
    k: usize,
    n: usize,
    naive_gflops: f64,
    blocked_gflops: f64,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        self.blocked_gflops / self.naive_gflops
    }
}

fn measure(case: &Case) -> Measurement {
    let (m, k, n) = (case.m, case.k, case.n);
    let flops = 2.0 * m as f64 * k as f64 * n as f64;
    // Scale reps so each trial costs roughly the same wall-clock.
    let reps = ((2e7 / flops) as usize).clamp(1, 2000);
    let trials = 7;
    // Operands in the layout each kernel reads: `a_t`/`b_t` are the
    // pre-transposed forms gemm_tn/gemm_nt consume directly.
    let a = fill(1, m * k);
    let b = fill(2, k * n);
    let a_t = {
        let mut t = vec![0.0f32; m * k];
        gemm::transpose_into(m, k, &a, &mut t); // [k, m]
        t
    };
    let b_t = {
        let mut t = vec![0.0f32; k * n];
        gemm::transpose_into(k, n, &b, &mut t); // [n, k]
        t
    };
    let mut c = vec![0.0f32; m * n];
    let mut scratch = vec![0.0f32; m * k.max(n)];

    let naive_secs = match case.kind {
        Kind::Nn => time_per_call(
            || {
                c.iter_mut().for_each(|v| *v = 0.0);
                gemm::naive(m, k, n, &a, &b, &mut c);
            },
            reps,
            trials,
        ),
        // Baselines for nt/tn are what the backward passes used to do:
        // materialize the transpose, then run the naive kernel.
        Kind::Tn => time_per_call(
            || {
                gemm::transpose_into(k, m, &a_t, &mut scratch[..m * k]);
                c.iter_mut().for_each(|v| *v = 0.0);
                gemm::naive(m, k, n, &scratch[..m * k], &b, &mut c);
            },
            reps,
            trials,
        ),
        Kind::Nt => time_per_call(
            || {
                gemm::transpose_into(n, k, &b_t, &mut scratch[..k * n]);
                c.iter_mut().for_each(|v| *v = 0.0);
                gemm::naive(m, k, n, &a, &scratch[..k * n], &mut c);
            },
            reps,
            trials,
        ),
    };
    let blocked_secs = match case.kind {
        Kind::Nn => time_per_call(
            || {
                c.iter_mut().for_each(|v| *v = 0.0);
                gemm::gemm(m, k, n, &a, &b, &mut c);
            },
            reps,
            trials,
        ),
        Kind::Tn => time_per_call(
            || {
                c.iter_mut().for_each(|v| *v = 0.0);
                gemm::gemm_tn(m, n, k, &a_t, &b, &mut c);
            },
            reps,
            trials,
        ),
        Kind::Nt => time_per_call(
            || {
                c.iter_mut().for_each(|v| *v = 0.0);
                gemm::gemm_nt(m, n, k, &a, &b_t, &mut c);
            },
            reps,
            trials,
        ),
    };

    Measurement {
        name: case.name,
        m,
        k,
        n,
        naive_gflops: flops / naive_secs / 1e9,
        blocked_gflops: flops / blocked_secs / 1e9,
    }
}

/// Runs all cases, prints a table, and writes `results/BENCH_gemm.json`.
pub fn run() {
    println!("GEMM kernel benchmark (median of 7 trials per kernel)");
    println!(
        "{:>20} {:>16} {:>14} {:>14} {:>9}",
        "case", "shape (m,k,n)", "naive GF/s", "blocked GF/s", "speedup"
    );
    let results: Vec<Measurement> = CASES.iter().map(measure).collect();
    let mut entries = Vec::with_capacity(results.len());
    for r in &results {
        println!(
            "{:>20} {:>16} {:>14.2} {:>14.2} {:>8.2}x",
            r.name,
            format!("({},{},{})", r.m, r.k, r.n),
            r.naive_gflops,
            r.blocked_gflops,
            r.speedup()
        );
        entries.push(format!(
            "    {{\"name\": \"{}\", \"m\": {}, \"k\": {}, \"n\": {}, \
             \"naive_gflops\": {:.2}, \"blocked_gflops\": {:.2}, \"speedup\": {:.2}}}",
            r.name,
            r.m,
            r.k,
            r.n,
            r.naive_gflops,
            r.blocked_gflops,
            r.speedup()
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"gemm\",\n  \"unit\": \"GFLOP/s\",\n  \"cases\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    let path = results_dir().join("BENCH_gemm.json");
    std::fs::write(&path, json).expect("write BENCH_gemm.json");
    eprintln!("[harness] wrote {}", path.display());
}
