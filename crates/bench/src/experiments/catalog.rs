//! Table I / attack-catalog experiment: prints the threat matrix and the
//! 35 in-scope attacks.

use crate::harness::write_csv;
use vehigan_vasp::{Attack, AttackKind, TargetField};

/// Prints the Table I attack matrix and writes `results/table1_catalog.csv`.
pub fn run() {
    println!("Table I — attack matrix (kind × targeted field)");
    println!("{:<16} fields", "kind");
    for kind in AttackKind::ALL {
        let fields: Vec<&str> = TargetField::ALL
            .iter()
            .filter(|&&f| Attack::new(kind, f).is_ok())
            .map(|f| match f {
                TargetField::Position => "Position",
                TargetField::Speed => "Speed",
                TargetField::Acceleration => "Accel",
                TargetField::Heading => "Heading",
                TargetField::YawRate => "YawRate",
                TargetField::HeadingYawRate => "Heading&YawRate",
            })
            .collect();
        println!("{kind:<16?} {}", fields.join(", "));
    }
    let catalog = Attack::catalog();
    println!("\n{} in-scope attacks (Table III order):", catalog.len());
    let rows: Vec<String> = catalog
        .iter()
        .enumerate()
        .map(|(i, a)| {
            println!(
                "  {:>2}. {}{}",
                i + 1,
                a,
                if a.is_advanced() { "  [advanced]" } else { "" }
            );
            format!(
                "{},{},{:?},{:?},{}",
                i + 1,
                a,
                a.kind(),
                a.field(),
                a.is_advanced()
            )
        })
        .collect();
    write_csv(
        "table1_catalog.csv",
        "index,name,kind,field,advanced",
        &rows,
    );
}
