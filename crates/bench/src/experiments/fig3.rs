//! Fig 3: per-attack AUROC of every WGAN in the zoo, with the top-3
//! models and the per-attack upper envelope highlighted.
//!
//! The paper's takeaway — no single WGAN is strong against every attack —
//! is checked quantitatively: even the best single model falls visibly
//! below the per-attack maximum achievable by *some* model.

use crate::harness::{write_csv, Harness};
use vehigan_metrics::auroc;

/// Runs Fig 3 and writes `results/fig3_wgan_auroc.csv`.
///
/// Scores every zoo model (not just the selected ones) against every
/// Table III attack on held-out test data.
pub fn run(harness: &mut Harness) {
    let n_models = harness.pipeline.zoo.len();
    let n_attacks = harness.attacks.len();
    eprintln!("[fig3] scoring {n_models} zoo models × {n_attacks} attacks…");

    // auroc_matrix[model][attack]
    let mut matrix = vec![vec![0.0f64; n_attacks]; n_models];
    for (mi, row) in matrix.iter_mut().enumerate() {
        for (ai, ds) in harness.attack_windows.iter().enumerate() {
            let scores = harness.pipeline.zoo.entries_mut()[mi]
                .wgan
                .score_batch(&ds.x);
            row[ai] = auroc(&scores, &ds.labels);
        }
    }

    let model_ids: Vec<String> = harness
        .pipeline
        .zoo
        .entries()
        .iter()
        .map(|e| e.wgan.config().id())
        .collect();
    let mean_auroc: Vec<f64> = matrix
        .iter()
        .map(|row| row.iter().sum::<f64>() / n_attacks as f64)
        .collect();

    // Top-3 by mean AUROC (the highlighted lines of Fig 3).
    let mut order: Vec<usize> = (0..n_models).collect();
    order.sort_by(|&a, &b| mean_auroc[b].partial_cmp(&mean_auroc[a]).expect("finite"));
    let top3 = &order[..3.min(n_models)];

    println!("Fig 3 — per-attack AUROC across the zoo");
    println!(
        "{:<30} {:>8} {:>8} {:>8} {:>8}",
        "attack", "min", "max", "top1", "top3avg"
    );
    let mut rows = Vec::with_capacity(n_attacks);
    let mut envelope_sum = 0.0;
    let mut top1_sum = 0.0;
    for (ai, attack) in harness.attacks.iter().enumerate() {
        let col: Vec<f64> = (0..n_models).map(|mi| matrix[mi][ai]).collect();
        let max = col.iter().copied().fold(f64::MIN, f64::max);
        let min = col.iter().copied().fold(f64::MAX, f64::min);
        let top1 = matrix[order[0]][ai];
        let top3avg = top3.iter().map(|&mi| matrix[mi][ai]).sum::<f64>() / top3.len() as f64;
        envelope_sum += max;
        top1_sum += top1;
        println!(
            "{:<30} {min:>8.3} {max:>8.3} {top1:>8.3} {top3avg:>8.3}",
            attack.name()
        );
        let per_model: Vec<String> = col.iter().map(|v| format!("{v:.4}")).collect();
        rows.push(format!("{},{}", attack.name(), per_model.join(",")));
    }
    let header = format!("attack,{}", model_ids.join(","));
    write_csv("fig3_wgan_auroc.csv", &header, &rows);

    println!(
        "\nbest single model: {} (mean AUROC {:.3}); upper envelope mean {:.3}",
        model_ids[order[0]],
        top1_sum / n_attacks as f64,
        envelope_sum / n_attacks as f64
    );
    println!(
        "gap to envelope: {:.3} — no single WGAN attains the per-attack maximum (paper Fig 3 finding)",
        (envelope_sum - top1_sum) / n_attacks as f64
    );
}
