//! Kill/resume smoke test: proves end to end that an interrupted zoo
//! training run, resumed from its checkpoint directory, produces models
//! **bitwise identical** to an uninterrupted run.
//!
//! Two kill sites are exercised against one uninterrupted reference:
//!
//! 1. **Group boundary** — `stop_after_groups = 1` halts after the first
//!    training group; the resumed run reloads finished members from the
//!    manifest and trains the rest.
//! 2. **Epoch boundary mid-member** — `stop_after_epochs` lands the halt
//!    inside a training group; the resumed run restores the in-flight
//!    model from its epoch-granular partial checkpoint (v2 wire format:
//!    generator + optimizer caches + spectral-norm state + RNG cursor)
//!    and continues from the last finished epoch.
//!
//! For every grid member the critic bytes and training history must match
//! the reference exactly; any drift is a hard failure.

use std::fs;
use std::path::PathBuf;
use vehigan_core::{GridConfig, ModelZoo, ZooTrainOptions, ZooTrainReport};
use vehigan_tensor::init::{rand_uniform, seeded_rng};
use vehigan_tensor::Tensor;

/// Synthetic benign windows: smooth per-sample traces in the snapshot
/// shape `[n, 10, 12, 1]` (same construction as the core fault-tolerance
/// tests — cheap, deterministic, and trainable).
fn benign(n: usize, seed: u64) -> Tensor {
    let mut rng = seeded_rng(seed);
    let base = rand_uniform(&[n, 1], -0.2, 0.2, &mut rng);
    let mut data = Vec::with_capacity(n * 120);
    for i in 0..n {
        for j in 0..120 {
            data.push(base.as_slice()[i] + 0.05 * (j as f32 * 0.4).cos());
        }
    }
    Tensor::from_vec(data, &[n, 10, 12, 1])
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("vehigan-resume-smoke-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// `(config id, critic bytes, history)` per member, in grid order.
fn fingerprints(zoo: &ModelZoo) -> Vec<(String, Vec<u8>, usize)> {
    let mut rows: Vec<(usize, String, Vec<u8>, usize)> = zoo
        .entries()
        .iter()
        .map(|e| {
            (
                e.grid_index,
                e.wgan.config().id(),
                e.wgan.critic_bytes(),
                e.wgan.history().len(),
            )
        })
        .collect();
    rows.sort_by_key(|r| r.0);
    rows.into_iter().map(|(_, id, b, h)| (id, b, h)).collect()
}

fn train(grid: &GridConfig, x: &Tensor, options: &ZooTrainOptions) -> ZooTrainReport {
    ModelZoo::train_grid(grid, x, options).expect("zoo training failed")
}

fn check_leg(
    tag: &str,
    grid: &GridConfig,
    x: &Tensor,
    kill: ZooTrainOptions,
    reference: &[(String, Vec<u8>, usize)],
) {
    let dir = scratch_dir(tag);
    let killed = train(
        grid,
        x,
        &ZooTrainOptions {
            checkpoint_dir: Some(dir.clone()),
            ..kill.clone()
        },
    );
    assert!(
        !killed.complete,
        "[resume] {tag}: kill run unexpectedly finished the grid"
    );
    eprintln!(
        "[resume] {tag}: killed with {}/{} members trained; resuming…",
        killed.zoo.len(),
        reference.len()
    );
    let resumed = train(
        grid,
        x,
        &ZooTrainOptions {
            checkpoint_dir: Some(dir.clone()),
            threads: kill.threads,
            sentinel: kill.sentinel,
            ..ZooTrainOptions::default()
        },
    );
    assert!(resumed.complete, "[resume] {tag}: resumed run incomplete");
    let got = fingerprints(&resumed.zoo);
    assert_eq!(
        got.len(),
        reference.len(),
        "[resume] {tag}: member count mismatch"
    );
    for ((gid, gbytes, ghist), (rid, rbytes, rhist)) in got.iter().zip(reference) {
        assert_eq!(gid, rid, "[resume] {tag}: member id mismatch");
        assert_eq!(
            ghist, rhist,
            "[resume] {tag}: history length differs for {gid}"
        );
        assert!(
            gbytes == rbytes,
            "[resume] {tag}: critic bytes differ for {gid} — resume is NOT bitwise identical"
        );
    }
    eprintln!(
        "[resume] {tag}: PASS — {} members bitwise identical to uninterrupted run",
        got.len()
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Runs both kill/resume legs at a fixed small scale (the grid is
/// intentionally tiny — the point is the resume machinery, not model
/// quality).
pub fn run() {
    let grid = GridConfig::tiny();
    let x = benign(96, 7);

    eprintln!(
        "[resume] training uninterrupted reference ({} members)…",
        grid.len()
    );
    let reference_run = train(&grid, &x, &ZooTrainOptions::new(2));
    assert!(reference_run.complete);
    let reference = fingerprints(&reference_run.zoo);

    // Kill legs run single-threaded so the stop budget trips exactly where
    // intended (with more workers every group is claimed before the cap is
    // observed); the resumed runs use the same thread count, though the
    // result is thread-count independent.
    check_leg(
        "group-boundary",
        &grid,
        &x,
        ZooTrainOptions {
            stop_after_groups: Some(1),
            ..ZooTrainOptions::new(1)
        },
        &reference,
    );
    check_leg(
        "mid-member",
        &grid,
        &x,
        ZooTrainOptions {
            stop_after_epochs: Some(4),
            ..ZooTrainOptions::new(1)
        },
        &reference,
    );
    println!("resume smoke: PASS (group-boundary + mid-member kill/resume bitwise identical)");
}
