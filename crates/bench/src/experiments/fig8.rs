//! Fig 8: single-snapshot inference latency of standard (float) vs lite
//! (int8 fused) critics, by critic depth.
//!
//! The paper's claim is about the shape: both paths sit far below the
//! 100 ms BSM interval; the lite path is orders of magnitude faster; depth
//! adds a mild slope. Criterion benches (`cargo bench -p vehigan-bench`)
//! provide the rigorous timings; this experiment prints a quick summary.

use crate::harness::write_csv;
use std::time::Instant;
use vehigan_core::{build_critic, WganConfig};
use vehigan_lite::{Int8Ensemble, LiteCritic};
use vehigan_tensor::init::{rand_uniform, seeded_rng};

/// Critic depths swept by the paper (§IV-A.1).
pub const LAYER_COUNTS: [usize; 3] = [6, 7, 8];

/// Builds a critic of the given depth with the paper's snapshot shape.
pub fn critic_config(layers: usize) -> WganConfig {
    WganConfig {
        layers,
        ..WganConfig::default()
    }
}

fn time_ms(mut f: impl FnMut(), reps: usize) -> f64 {
    // Warm-up.
    for _ in 0..5 {
        f();
    }
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() * 1000.0 / reps as f64
}

/// Runs Fig 8 and writes `results/fig8_inference_ms.csv`.
pub fn run() {
    let mut rng = seeded_rng(8);
    println!("Fig 8 — per-snapshot inference latency (ms), BSM budget = 100 ms");
    println!(
        "{:>7} {:>14} {:>14} {:>11} {:>9}",
        "layers", "standard (8a)", "lite (8b)", "quant (i8)", "speedup"
    );
    let mut rows = Vec::new();
    for layers in LAYER_COUNTS {
        let config = critic_config(layers);
        let shape = (config.window, config.features, 1);
        let mut critic = build_critic(&config, &mut seeded_rng(layers as u64));
        let mut lite = LiteCritic::compile(&critic, shape).expect("critic compiles");
        let calibration = rand_uniform(
            &[16, config.window, config.features, 1],
            -1.0,
            1.0,
            &mut seeded_rng(layers as u64 + 80),
        );
        let snap = critic.save();
        let mut quant = Int8Ensemble::compile(&[&snap], shape, calibration.as_slice())
            .expect("critic quantizes");
        let x = rand_uniform(&[1, config.window, config.features, 1], -1.0, 1.0, &mut rng);
        let flat: Vec<f32> = x.as_slice().to_vec();
        let mut score = [0.0f32; 1];

        let std_ms = time_ms(
            || {
                let _ = critic.forward(&x);
            },
            50,
        );
        let lite_ms = time_ms(
            || {
                let _ = lite.infer(&flat);
            },
            500,
        );
        let quant_ms = time_ms(
            || {
                quant.score_subset_into(&[0], &flat, 1, &mut score);
            },
            500,
        );
        println!(
            "{layers:>7} {std_ms:>14.3} {lite_ms:>14.4} {quant_ms:>11.4} {:>8.1}x",
            std_ms / quant_ms
        );
        rows.push(format!("{layers},{std_ms:.5},{lite_ms:.5},{quant_ms:.5}"));
        assert!(
            std_ms < 100.0 && lite_ms < 100.0 && quant_ms < 100.0,
            "inference must beat the 100 ms BSM interval"
        );
    }
    write_csv(
        "fig8_inference_ms.csv",
        "layers,standard_ms,lite_ms,quant_ms",
        &rows,
    );
    println!(
        "\nall paths beat the 100 ms BSM interval; lite/quant are the OBU fallbacks (paper Fig 8)"
    );
}
