//! Serving SLO benchmark: fast-path fraction, overload shedding, and
//! degraded-mode behavior of the hardened serve plane (DESIGN.md §11).
//!
//! Run via `vehigan-bench slo --scale quick [--vehicles N] [--duration S]`
//! (trains the quick system, drives the admission-controlled server
//! through steady load plus a 4× overload burst, writes
//! `results/BENCH_slo.json`).
//!
//! The run **gates** its own acceptance criteria and panics when they
//! fail (so the CI smoke step catches regressions):
//!
//! - ≥ 95 % of scored windows stay on the int8 fast path at target load
//!   (the escalation cutoff is calibrated to an operator-style capacity
//!   budget from a gate-only probe of the same traffic);
//! - zero windows shed at 1× steady load;
//! - the 4× burst sheds a bounded, non-zero number of windows, and two
//!   identical runs shed identically and emit bitwise-identical
//!   decisions (determinism under overload).

use crate::harness::{results_dir, Harness};
use std::time::Instant;
use vehigan_features::IngestGuard;
use vehigan_serve::{
    escalation_threshold, AdmissionConfig, EscalationPolicy, ServeMode, ServerConfig, StreamServer,
};
use vehigan_sim::{Bsm, SimConfig, TrafficSimulator, VehicleTrace, BSM_INTERVAL_S};
use vehigan_tensor::init::seeded_rng;
use vehigan_vasp::{inject, Attack, AttackParams, AttackPolicy};

/// Minimum fraction of scored windows that must stay on the int8 fast
/// path at target load (ISSUE gate).
pub const FAST_PATH_TARGET: f64 = 0.95;

/// Escalation cutoff: this percentile of the probe run's gate scores.
/// Calibrating on the *serving* distribution (benign + the attacker
/// fraction actually present) is the operator's view: the cutoff encodes
/// an escalation capacity budget, so the expected escalation rate is
/// `100 − p` percent of traffic by construction and the fast-path gate
/// holds with slack regardless of train/serve distribution shift.
pub const CALIBRATION_PERCENTILE: f64 = 97.0;

/// Fraction of vehicles transmitting falsified BSMs. Kept at a realistic
/// few percent — the SLO question is "does the fast path hold at target
/// load", not Table III detection accuracy (the `stream` bench covers
/// AUROC drift at 10 % attackers).
const ATTACKER_FRACTION: f64 = 0.02;

/// Overload burst: this many tick-slices of traffic per server tick…
const BURST_MULTIPLIER: usize = 4;
/// …for this many consecutive ticks.
const BURST_TICKS: u64 = 2;

/// Admission budget headroom over the expected steady windows/tick (one
/// window per live vehicle per tick): 30 % slack absorbs ramp jitter at
/// 1× and drains burst backlog at ~0.3 windows/vehicle/tick.
const BUDGET_HEADROOM: f64 = 1.3;

const N_SHARDS: usize = 4;

/// Mixed stream: every `1/ATTACKER_FRACTION`-th vehicle runs a VASP
/// attack whose falsified values stay inside the RSU guard's field
/// limits (the guard must reject *malformed* traffic, not attacks —
/// detecting plausible-but-false data is the model's job).
fn mixed_stream(fleet: &[VehicleTrace], seed: u64) -> (Vec<Bsm>, usize) {
    let attacks: Vec<Attack> = ["RandomPosition", "RandomSpeed", "HighHeadingYawRate"]
        .iter()
        .map(|n| Attack::by_name(n).expect("catalog attack"))
        .collect();
    let mut rng = seeded_rng(seed);
    let every = (1.0 / ATTACKER_FRACTION) as usize;
    let mut stream = Vec::new();
    let mut attackers = 0usize;
    for (i, trace) in fleet.iter().enumerate() {
        if i % every == 0 {
            let attacked = inject(
                trace,
                attacks[attackers % attacks.len()],
                AttackPolicy::Persistent,
                &AttackParams::default(),
                &mut rng,
            );
            stream.extend_from_slice(&attacked.trace.bsms);
            attackers += 1;
        } else {
            stream.extend_from_slice(&trace.bsms);
        }
    }
    stream.sort_by(|a, b| {
        a.timestamp
            .partial_cmp(&b.timestamp)
            .unwrap()
            .then(a.vehicle_id.cmp(&b.vehicle_id))
    });
    (stream, attackers)
}

/// Groups a timestamp-sorted stream into per-tick index ranges of
/// [`BSM_INTERVAL_S`] width.
fn slice_ranges(stream: &[Bsm]) -> Vec<std::ops::Range<usize>> {
    let mut ranges = Vec::new();
    let mut start = 0usize;
    let mut slice_end = BSM_INTERVAL_S;
    let mut i = 0usize;
    while i < stream.len() {
        while i < stream.len() && stream[i].timestamp < slice_end {
            i += 1;
        }
        ranges.push(start..i);
        start = i;
        slice_end += BSM_INTERVAL_S;
    }
    ranges
}

/// Everything one serving run produces that the gates and the report
/// need; wall-clock fields are excluded from the determinism comparison.
struct RunOutcome {
    decisions: u64,
    flagged: u64,
    fnv: u64,
    shed_steady: u64,
    shed_total: u64,
    escalated: u64,
    windows_scored: u64,
    degraded_ticks: u64,
    mode_switches: u64,
    rejected_total: u64,
    final_mode: ServeMode,
    /// `(tick wall ms, decisions that tick)`, scoring ticks only.
    tick_lat: Vec<(f64, usize)>,
    elapsed_s: f64,
}

/// FNV-1a over the full bit pattern of every decision, in emission
/// order: two runs agree iff they emitted the same decisions in the
/// same order.
fn fnv_decision(h: u64, vehicle: u32, ts: f64, score: f32, escalated: bool, flagged: bool) -> u64 {
    let mut h = h;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    mix(&vehicle.to_le_bytes());
    mix(&ts.to_bits().to_le_bytes());
    mix(&score.to_bits().to_le_bytes());
    mix(&[escalated as u8, flagged as u8]);
    h
}

/// The per-run serving knobs derived during calibration, bundled so the
/// two determinism runs are guaranteed to share them.
struct SloKnobs {
    tau_esc: f32,
    budget: usize,
    cap: usize,
    burst_at: u64,
}

/// Drives one admission-controlled server over the sliced stream, with
/// the overload burst time-compressing `BURST_MULTIPLIER` slices per
/// tick at `knobs.burst_at`, then drains the backlog to empty.
fn drive(
    harness: &Harness,
    stream: &[Bsm],
    ranges: &[std::ops::Range<usize>],
    members: &[usize],
    knobs: &SloKnobs,
) -> RunOutcome {
    let SloKnobs {
        tau_esc,
        budget,
        cap,
        burst_at,
    } = *knobs;
    let mut server = StreamServer::new(
        &harness.pipeline.vehigan,
        harness.pipeline.scaler.clone(),
        ServerConfig {
            n_shards: N_SHARDS,
            policy: EscalationPolicy::Threshold(tau_esc),
            members: Some(members.to_vec()),
            guard: IngestGuard::rsu(),
            admission: AdmissionConfig {
                windows_per_tick: Some(budget),
                max_pending_per_shard: Some(cap),
                degrade_after: 2,
                restore_after: 3,
            },
            ..ServerConfig::default()
        },
    )
    .expect("server builds");

    let mut out = RunOutcome {
        decisions: 0,
        flagged: 0,
        fnv: 0xcbf2_9ce4_8422_2325,
        shed_steady: 0,
        shed_total: 0,
        escalated: 0,
        windows_scored: 0,
        degraded_ticks: 0,
        mode_switches: 0,
        rejected_total: 0,
        final_mode: ServeMode::Normal,
        tick_lat: Vec::new(),
        elapsed_s: 0.0,
    };
    let mut cursor = 0usize;
    let mut tick = 0u64;
    let mut drain_ticks = 0u32;
    loop {
        let mult = if tick >= burst_at && tick < burst_at + BURST_TICKS {
            BURST_MULTIPLIER
        } else {
            1
        };
        let mut consumed = 0usize;
        let start = ranges.get(cursor).map_or(stream.len(), |r| r.start);
        let mut end = start;
        while consumed < mult && cursor < ranges.len() {
            end = ranges[cursor].end;
            cursor += 1;
            consumed += 1;
        }
        if consumed == 0 {
            if server.pending_windows() == 0 || drain_ticks >= 4096 {
                break;
            }
            drain_ticks += 1;
        }
        let t0 = Instant::now();
        let report = server.ingest_batch(&stream[start..end]);
        assert!(report.panicked_shards.is_empty(), "ingest worker panicked");
        let ticked = server.tick().expect("tick scores");
        let dt = t0.elapsed().as_secs_f64();
        out.elapsed_s += dt;
        if !ticked.is_empty() {
            out.tick_lat.push((dt * 1000.0, ticked.len()));
        }
        for d in &ticked {
            out.fnv = fnv_decision(
                out.fnv,
                d.vehicle.0,
                d.timestamp,
                d.score,
                d.escalated,
                d.flagged,
            );
            out.flagged += d.flagged as u64;
        }
        out.decisions += ticked.len() as u64;
        if tick < burst_at {
            out.shed_steady = server.stats().shed;
        }
        tick += 1;
    }
    assert_eq!(server.pending_windows(), 0, "service failed to drain");
    let stats = server.stats();
    out.shed_total = stats.shed;
    out.escalated = stats.escalated;
    out.windows_scored = stats.windows_scored;
    out.degraded_ticks = stats.degraded_ticks;
    out.mode_switches = stats.mode_switches;
    out.rejected_total = stats.rejected.total();
    out.final_mode = server.mode();
    out
}

/// Decision-weighted latency percentile over `(ms, n_decisions)` ticks.
fn latency_pct(tick_lat: &mut [(f64, usize)], decisions: u64, p: f64) -> f64 {
    tick_lat.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let target = ((p / 100.0 * decisions as f64).ceil() as usize).max(1);
    let mut seen = 0usize;
    for &(ms, n) in tick_lat.iter() {
        seen += n;
        if seen >= target {
            return ms;
        }
    }
    tick_lat.last().map_or(0.0, |&(ms, _)| ms)
}

/// Runs the SLO benchmark on a trained harness and writes
/// `results/BENCH_slo.json`.
pub fn run(harness: &mut Harness, vehicles: usize, duration_s: f64) {
    // Vehicles spawn across the first 20 % of the horizon and need 1.1 s
    // of messages before their first window; 4 s guarantees a measurable
    // all-vehicles-live steady phase before the burst.
    let duration_s = duration_s.max(4.0);
    println!(
        "Serving SLO benchmark: {vehicles} vehicles x {duration_s:.1} s, \
         {BURST_MULTIPLIER}x burst for {BURST_TICKS} ticks"
    );
    harness
        .pipeline
        .compile_int8()
        .expect("int8 backend compiles");
    let k = harness.pipeline.vehigan.k();
    let members: Vec<usize> = (0..k).collect();

    // --- Simulated city traffic (2 % attackers). ---
    let fleet = TrafficSimulator::new(SimConfig {
        n_vehicles: vehicles,
        duration_s,
        seed: 11,
        ..SimConfig::default()
    })
    .run();
    let (stream, attackers) = mixed_stream(&fleet, 29);
    let ranges = slice_ranges(&stream);
    println!(
        "traffic: {} BSMs from {vehicles} vehicles ({attackers} attackers), {} tick slices",
        stream.len(),
        ranges.len()
    );

    // All vehicles are live (and past window warmup) from here; the
    // burst lands a few ticks into the steady phase.
    let all_live_tick = ((0.2 * duration_s + 1.2) / BSM_INTERVAL_S).ceil() as u64 + 2;
    let burst_at = all_live_tick + 5;
    let slices_through_burst = burst_at as usize + BURST_TICKS as usize * BURST_MULTIPLIER;
    assert!(
        slices_through_burst < ranges.len(),
        "stream too short for the burst schedule; raise --duration"
    );

    // Deterministic, traffic-derived admission budget: steady state is
    // one window per live vehicle per tick.
    let budget = ((BUDGET_HEADROOM * vehicles as f64).ceil() as usize).max(1);
    let cap = (2 * budget).div_ceil(N_SHARDS);

    // --- Calibration probe: gate-only pass over the same traffic. ---
    let mut probe = StreamServer::new(
        &harness.pipeline.vehigan,
        harness.pipeline.scaler.clone(),
        ServerConfig {
            n_shards: N_SHARDS,
            policy: EscalationPolicy::Never,
            members: Some(members.clone()),
            guard: IngestGuard::rsu(),
            ..ServerConfig::default()
        },
    )
    .expect("probe server builds");
    probe.ingest_batch(&stream);
    let mut gate_scores: Vec<f32> = Vec::new();
    loop {
        let d = probe.tick().expect("probe tick");
        if d.is_empty() && probe.pending_windows() == 0 {
            break;
        }
        gate_scores.extend(d.iter().map(|x| x.score));
    }
    let tau_esc = escalation_threshold(&gate_scores, CALIBRATION_PERCENTILE);
    println!(
        "calibration: tau_esc {tau_esc:.4} (p{CALIBRATION_PERCENTILE} of {} probe windows), \
         budget {budget} windows/tick, cap {cap}/shard x {N_SHARDS} shards",
        gate_scores.len()
    );

    // --- Two identical SLO runs (determinism under overload). ---
    let knobs = SloKnobs {
        tau_esc,
        budget,
        cap,
        burst_at,
    };
    let mut a = drive(harness, &stream, &ranges, &members, &knobs);
    let b = drive(harness, &stream, &ranges, &members, &knobs);

    let fast_path = 1.0 - a.escalated as f64 / a.windows_scored.max(1) as f64;
    let shed_burst = a.shed_total - a.shed_steady;
    let (p50_ms, p99_ms) = (
        latency_pct(&mut a.tick_lat, a.decisions, 50.0),
        latency_pct(&mut a.tick_lat, a.decisions, 99.0),
    );
    let bsm_rate = stream.len() as f64 / a.elapsed_s;
    let deterministic = a.fnv == b.fnv
        && a.decisions == b.decisions
        && a.shed_total == b.shed_total
        && a.shed_steady == b.shed_steady
        && a.escalated == b.escalated
        && a.windows_scored == b.windows_scored
        && a.degraded_ticks == b.degraded_ticks
        && a.mode_switches == b.mode_switches
        && a.rejected_total == b.rejected_total;

    println!(
        "slo: fast path {:.4} ({} escalated of {}), {} decisions, {} flagged",
        fast_path, a.escalated, a.windows_scored, a.decisions, a.flagged
    );
    println!(
        "overload: shed {} (steady {}, burst {shed_burst}), degraded ticks {}, \
         mode switches {}, final mode {:?}",
        a.shed_total, a.shed_steady, a.degraded_ticks, a.mode_switches, a.final_mode
    );
    println!(
        "latency: p50 {p50_ms:.2} ms, p99 {p99_ms:.2} ms, {bsm_rate:.0} BSMs/sec, \
         rejected {}",
        a.rejected_total
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"bench\": \"slo\",\n  \"vehicles\": {vehicles},\n  \"duration_s\": {duration_s},\n  \"bsms\": {},\n  \"attackers\": {attackers},\n  \"shards\": {N_SHARDS},\n  \"k\": {k},\n",
        stream.len(),
    ));
    json.push_str(&format!(
        "  \"admission\": {{\"windows_per_tick\": {budget}, \"max_pending_per_shard\": {cap}, \"headroom\": {BUDGET_HEADROOM}, \"burst_multiplier\": {BURST_MULTIPLIER}, \"burst_ticks\": {BURST_TICKS}, \"burst_at_tick\": {burst_at}}},\n"
    ));
    json.push_str(&format!(
        "  \"calibration\": {{\"percentile\": {CALIBRATION_PERCENTILE}, \"tau_esc\": {tau_esc:.5}, \"probe_windows\": {}}},\n",
        gate_scores.len()
    ));
    json.push_str(&format!(
        "  \"serving\": {{\"windows_scored\": {}, \"decisions\": {}, \"flagged\": {}, \"escalated\": {}, \"fast_path_fraction\": {fast_path:.4}, \"p50_ms\": {p50_ms:.3}, \"p99_ms\": {p99_ms:.3}, \"bsms_per_sec\": {bsm_rate:.0}, \"rejected\": {}}},\n",
        a.windows_scored, a.decisions, a.flagged, a.escalated, a.rejected_total
    ));
    json.push_str(&format!(
        "  \"overload\": {{\"shed_total\": {}, \"shed_steady\": {}, \"shed_burst\": {shed_burst}, \"degraded_ticks\": {}, \"mode_switches\": {}, \"final_mode\": \"{:?}\"}},\n",
        a.shed_total, a.shed_steady, a.degraded_ticks, a.mode_switches, a.final_mode
    ));
    json.push_str(&format!(
        "  \"gates\": {{\"fast_path_target\": {FAST_PATH_TARGET}, \"fast_path_ok\": {}, \"steady_shed_zero\": {}, \"burst_shed_positive\": {}, \"deterministic\": {deterministic}, \"drained\": true}}\n}}\n",
        fast_path >= FAST_PATH_TARGET,
        a.shed_steady == 0,
        shed_burst > 0,
    ));
    let path = results_dir().join("BENCH_slo.json");
    std::fs::write(&path, json).expect("write BENCH_slo.json");
    eprintln!("[harness] wrote {}", path.display());

    // --- Gates (ISSUE acceptance criteria). ---
    assert!(
        fast_path >= FAST_PATH_TARGET,
        "fast-path fraction {fast_path:.4} below the {FAST_PATH_TARGET} target"
    );
    assert_eq!(a.shed_steady, 0, "steady 1x load must never shed");
    assert!(shed_burst > 0, "{BURST_MULTIPLIER}x burst must shed");
    assert!(
        deterministic,
        "two identical overload runs diverged (decisions fnv {:#x} vs {:#x}, shed {} vs {})",
        a.fnv, b.fnv, a.shed_total, b.shed_total
    );
    println!(
        "gates: fast path {fast_path:.4} >= {FAST_PATH_TARGET} ok, steady shed 0 ok, \
         burst shed {shed_burst} > 0 ok, deterministic ok, drained ok"
    );
}
