//! Serving SLO benchmark: fast-path fraction, overload shedding, and
//! degraded-mode behavior of the hardened serve plane (DESIGN.md §11).
//!
//! Run via `vehigan-bench slo --scale quick [--vehicles N] [--duration S]`
//! (trains the quick system, drives the admission-controlled server
//! through steady load plus a 4× overload burst, writes
//! `results/BENCH_slo.json`).
//!
//! The run **gates** its own acceptance criteria and panics when they
//! fail (so the CI smoke step catches regressions):
//!
//! - ≥ 95 % of scored windows stay on the int8 fast path at target load
//!   (the escalation cutoff is calibrated to an operator-style capacity
//!   budget from a gate-only probe of the same traffic);
//! - zero windows shed at 1× steady load;
//! - the 4× burst sheds a bounded, non-zero number of windows, and two
//!   identical runs shed identically and emit bitwise-identical
//!   decisions (determinism under overload).

use crate::experiments::serve_driver::{
    city_fleet, drive, latency_pct, mixed_stream, slice_ranges, Burst,
};
use crate::harness::{results_dir, Harness};
use vehigan_features::IngestGuard;
use vehigan_serve::{
    escalation_threshold, AdmissionConfig, EscalationPolicy, ServerConfig, StreamServer,
};
use vehigan_sim::BSM_INTERVAL_S;

/// Minimum fraction of scored windows that must stay on the int8 fast
/// path at target load (ISSUE gate).
pub const FAST_PATH_TARGET: f64 = 0.95;

/// Escalation cutoff: this percentile of the probe run's gate scores.
/// Calibrating on the *serving* distribution (benign + the attacker
/// fraction actually present) is the operator's view: the cutoff encodes
/// an escalation capacity budget, so the expected escalation rate is
/// `100 − p` percent of traffic by construction and the fast-path gate
/// holds with slack regardless of train/serve distribution shift.
pub const CALIBRATION_PERCENTILE: f64 = 97.0;

/// Fraction of vehicles transmitting falsified BSMs. Kept at a realistic
/// few percent — the SLO question is "does the fast path hold at target
/// load", not Table III detection accuracy (the `stream` bench covers
/// AUROC drift at 10 % attackers).
const ATTACKER_FRACTION: f64 = 0.02;

/// Overload burst: this many tick-slices of traffic per server tick…
const BURST_MULTIPLIER: usize = 4;
/// …for this many consecutive ticks.
const BURST_TICKS: u64 = 2;

/// Admission budget headroom over the expected steady windows/tick (one
/// window per live vehicle per tick): 30 % slack absorbs ramp jitter at
/// 1× and drains burst backlog at ~0.3 windows/vehicle/tick.
const BUDGET_HEADROOM: f64 = 1.3;

const N_SHARDS: usize = 4;

/// Runs the SLO benchmark on a trained harness and writes
/// `results/BENCH_slo.json`.
pub fn run(harness: &mut Harness, vehicles: usize, duration_s: f64) {
    // Vehicles spawn across the first 20 % of the horizon and need 1.1 s
    // of messages before their first window; 4 s guarantees a measurable
    // all-vehicles-live steady phase before the burst.
    let duration_s = duration_s.max(4.0);
    println!(
        "Serving SLO benchmark: {vehicles} vehicles x {duration_s:.1} s, \
         {BURST_MULTIPLIER}x burst for {BURST_TICKS} ticks"
    );
    harness
        .pipeline
        .compile_int8()
        .expect("int8 backend compiles");
    let k = harness.pipeline.vehigan.k();
    let members: Vec<usize> = (0..k).collect();

    // --- Simulated city traffic (2 % attackers). ---
    let fleet = city_fleet(vehicles, duration_s, 11);
    let (stream, attackers) = mixed_stream(&fleet, 29, ATTACKER_FRACTION);
    let ranges = slice_ranges(&stream);
    println!(
        "traffic: {} BSMs from {vehicles} vehicles ({attackers} attackers), {} tick slices",
        stream.len(),
        ranges.len()
    );

    // All vehicles are live (and past window warmup) from here; the
    // burst lands a few ticks into the steady phase.
    let all_live_tick = ((0.2 * duration_s + 1.2) / BSM_INTERVAL_S).ceil() as u64 + 2;
    let burst_at = all_live_tick + 5;
    let slices_through_burst = burst_at as usize + BURST_TICKS as usize * BURST_MULTIPLIER;
    assert!(
        slices_through_burst < ranges.len(),
        "stream too short for the burst schedule; raise --duration"
    );

    // Deterministic, traffic-derived admission budget: steady state is
    // one window per live vehicle per tick.
    let budget = ((BUDGET_HEADROOM * vehicles as f64).ceil() as usize).max(1);
    let cap = (2 * budget).div_ceil(N_SHARDS);

    // --- Calibration probe: gate-only pass over the same traffic. ---
    let mut probe = StreamServer::new(
        &harness.pipeline.vehigan,
        harness.pipeline.scaler.clone(),
        ServerConfig {
            n_shards: N_SHARDS,
            policy: EscalationPolicy::Never,
            members: Some(members.clone()),
            guard: IngestGuard::rsu(),
            ..ServerConfig::default()
        },
    )
    .expect("probe server builds");
    probe.ingest_batch(&stream);
    let mut gate_scores: Vec<f32> = Vec::new();
    loop {
        let d = probe.tick().expect("probe tick");
        if d.is_empty() && probe.pending_windows() == 0 {
            break;
        }
        gate_scores.extend(d.iter().map(|x| x.score));
    }
    let tau_esc = escalation_threshold(&gate_scores, CALIBRATION_PERCENTILE);
    println!(
        "calibration: tau_esc {tau_esc:.4} (p{CALIBRATION_PERCENTILE} of {} probe windows), \
         budget {budget} windows/tick, cap {cap}/shard x {N_SHARDS} shards",
        gate_scores.len()
    );

    // --- Two identical SLO runs (determinism under overload). ---
    let config = ServerConfig {
        n_shards: N_SHARDS,
        policy: EscalationPolicy::Threshold(tau_esc),
        members: Some(members.clone()),
        guard: IngestGuard::rsu(),
        admission: AdmissionConfig {
            windows_per_tick: Some(budget),
            max_pending_per_shard: Some(cap),
            degrade_after: 2,
            restore_after: 3,
        },
        ..ServerConfig::default()
    };
    let burst = Burst {
        at_tick: burst_at,
        multiplier: BURST_MULTIPLIER,
        ticks: BURST_TICKS,
    };
    let mut a = drive(harness, &stream, &ranges, config.clone(), Some(burst));
    let b = drive(harness, &stream, &ranges, config, Some(burst));

    let escalated = a.stats.escalated;
    let windows_scored = a.stats.windows_scored;
    let shed_total = a.stats.shed;
    let degraded_ticks = a.stats.degraded_ticks;
    let mode_switches = a.stats.mode_switches;
    let rejected_total = a.stats.rejected.total();
    let fast_path = 1.0 - escalated as f64 / windows_scored.max(1) as f64;
    let shed_burst = shed_total - a.shed_steady;
    let (p50_ms, p99_ms) = (
        latency_pct(&mut a.tick_lat, a.decisions, 50.0),
        latency_pct(&mut a.tick_lat, a.decisions, 99.0),
    );
    let bsm_rate = stream.len() as f64 / a.elapsed_s;
    // `ServerStats` covers shed/escalated/degraded/rejected and the
    // per-tier counters in one PartialEq comparison.
    let deterministic = a.fnv == b.fnv
        && a.decisions == b.decisions
        && a.shed_steady == b.shed_steady
        && a.stats == b.stats;

    println!(
        "slo: fast path {:.4} ({} escalated of {}), {} decisions, {} flagged",
        fast_path, escalated, windows_scored, a.decisions, a.flagged
    );
    println!(
        "overload: shed {} (steady {}, burst {shed_burst}), degraded ticks {}, \
         mode switches {}, final mode {:?}",
        shed_total, a.shed_steady, degraded_ticks, mode_switches, a.final_mode
    );
    println!(
        "latency: p50 {p50_ms:.2} ms, p99 {p99_ms:.2} ms, {bsm_rate:.0} BSMs/sec, \
         rejected {rejected_total}"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"bench\": \"slo\",\n  \"vehicles\": {vehicles},\n  \"duration_s\": {duration_s},\n  \"bsms\": {},\n  \"attackers\": {attackers},\n  \"shards\": {N_SHARDS},\n  \"k\": {k},\n",
        stream.len(),
    ));
    json.push_str(&format!(
        "  \"admission\": {{\"windows_per_tick\": {budget}, \"max_pending_per_shard\": {cap}, \"headroom\": {BUDGET_HEADROOM}, \"burst_multiplier\": {BURST_MULTIPLIER}, \"burst_ticks\": {BURST_TICKS}, \"burst_at_tick\": {burst_at}}},\n"
    ));
    json.push_str(&format!(
        "  \"calibration\": {{\"percentile\": {CALIBRATION_PERCENTILE}, \"tau_esc\": {tau_esc:.5}, \"probe_windows\": {}}},\n",
        gate_scores.len()
    ));
    json.push_str(&format!(
        "  \"serving\": {{\"windows_scored\": {windows_scored}, \"decisions\": {}, \"flagged\": {}, \"escalated\": {escalated}, \"fast_path_fraction\": {fast_path:.4}, \"p50_ms\": {p50_ms:.3}, \"p99_ms\": {p99_ms:.3}, \"bsms_per_sec\": {bsm_rate:.0}, \"rejected\": {rejected_total}}},\n",
        a.decisions, a.flagged
    ));
    json.push_str(&format!(
        "  \"overload\": {{\"shed_total\": {shed_total}, \"shed_steady\": {}, \"shed_burst\": {shed_burst}, \"degraded_ticks\": {degraded_ticks}, \"mode_switches\": {mode_switches}, \"final_mode\": \"{:?}\"}},\n",
        a.shed_steady, a.final_mode
    ));
    json.push_str(&format!(
        "  \"gates\": {{\"fast_path_target\": {FAST_PATH_TARGET}, \"fast_path_ok\": {}, \"steady_shed_zero\": {}, \"burst_shed_positive\": {}, \"deterministic\": {deterministic}, \"drained\": true}}\n}}\n",
        fast_path >= FAST_PATH_TARGET,
        a.shed_steady == 0,
        shed_burst > 0,
    ));
    let path = results_dir().join("BENCH_slo.json");
    std::fs::write(&path, json).expect("write BENCH_slo.json");
    eprintln!("[harness] wrote {}", path.display());

    // --- Gates (ISSUE acceptance criteria). ---
    assert!(
        fast_path >= FAST_PATH_TARGET,
        "fast-path fraction {fast_path:.4} below the {FAST_PATH_TARGET} target"
    );
    assert_eq!(a.shed_steady, 0, "steady 1x load must never shed");
    assert!(shed_burst > 0, "{BURST_MULTIPLIER}x burst must shed");
    assert!(
        deterministic,
        "two identical overload runs diverged (decisions fnv {:#x} vs {:#x}, shed {} vs {})",
        a.fnv, b.fnv, a.stats.shed, b.stats.shed
    );
    println!(
        "gates: fast path {fast_path:.4} >= {FAST_PATH_TARGET} ok, steady shed 0 ok, \
         burst shed {shed_burst} > 0 ok, deterministic ok, drained ok"
    );
}
