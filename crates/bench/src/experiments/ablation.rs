//! Ablations for the reproduction's design choices (DESIGN.md §1):
//! Lipschitz enforcement mode, generator output gain, window length `w`,
//! and threshold percentile `p`.
//!
//! Each ablation trains a single WGAN (the zoo would mask per-choice
//! effects) on a shared dataset and reports detection AUROC over a
//! representative attack set, plus threshold-operating points where
//! relevant. Results land in `results/ablation_*.csv`.

use crate::harness::{rate_above, write_csv, Scale};
use vehigan_core::{LipschitzMode, Wgan, WganConfig};
use vehigan_features::{build_windows, fit_scaler, WindowConfig, WindowDataset};
use vehigan_metrics::{auroc, percentile};
use vehigan_sim::{TrafficSimulator, VehicleTrace};
use vehigan_vasp::{Attack, DatasetBuilder, DatasetConfig};

const ATTACKS: [&str; 6] = [
    "RandomPosition",
    "RandomSpeed",
    "OppositeHeading",
    "RandomYawRate",
    "HighHeadingYawRate",
    "ConstantSpeed",
];

struct Data {
    train: WindowDataset,
    benign_test: WindowDataset,
    attack_tests: Vec<WindowDataset>,
}

fn build_data(fleet: &[VehicleTrace], window: usize) -> Data {
    let n = fleet.len();
    let train_fleet = &fleet[..n / 2];
    let test_fleet = &fleet[n / 2..];
    let builder = DatasetBuilder::new(train_fleet, DatasetConfig::default());
    let benign = builder.benign_dataset();
    let wcfg = WindowConfig {
        window,
        stride: 4,
        ..WindowConfig::default()
    };
    let scaler = fit_scaler(&benign, wcfg.representation);
    let train = build_windows(&benign, wcfg, &scaler);
    let test_builder = DatasetBuilder::new(test_fleet, DatasetConfig::default());
    let benign_test = build_windows(&test_builder.benign_dataset(), wcfg, &scaler);
    let attack_tests = ATTACKS
        .iter()
        .map(|name| {
            let attack = Attack::by_name(name).expect("catalog");
            build_windows(&test_builder.attack_dataset(attack), wcfg, &scaler)
        })
        .collect();
    Data {
        train,
        benign_test,
        attack_tests,
    }
}

fn mean_auroc(wgan: &mut Wgan, tests: &[WindowDataset]) -> f64 {
    tests
        .iter()
        .map(|ds| auroc(&wgan.score_batch(&ds.x), &ds.labels))
        .sum::<f64>()
        / tests.len() as f64
}

/// Runs all ablations and writes `results/ablation_*.csv`.
pub fn run() {
    let fleet = TrafficSimulator::new(Scale::Quick.pipeline_config().sim).run();

    // --- Ablation 1: Lipschitz enforcement mode -------------------------
    println!("Ablation 1 — Lipschitz enforcement (single WGAN, 4 epochs)");
    println!("{:<28} {:>8}", "mode", "AUROC");
    let data = build_data(&fleet, 10);
    let mut rows = Vec::new();
    for (label, mode) in [
        (
            "gradient-penalty(λ=10)",
            LipschitzMode::GradientPenalty { lambda: 10.0 },
        ),
        ("spectral-norm", LipschitzMode::Spectral),
        ("weight-clip(0.03)", LipschitzMode::Clip),
    ] {
        let mut wgan = Wgan::new(WganConfig {
            layers: 5,
            epochs: 4,
            batch_size: 64,
            n_critic: 2,
            lipschitz: mode,
            seed: 7,
            ..WganConfig::default()
        });
        wgan.train(&data.train.x);
        let score = mean_auroc(&mut wgan, &data.attack_tests);
        println!("{label:<28} {score:>8.3}");
        rows.push(format!("{label},{score:.4}"));
    }
    write_csv("ablation_lipschitz.csv", "mode,auroc", &rows);

    // --- Ablation 2: generator output gain ------------------------------
    println!("\nAblation 2 — generator output gain at init");
    println!("{:>6} {:>8}", "gain", "AUROC");
    let mut rows = Vec::new();
    for gain in [1.0f32, 2.0, 4.0, 8.0] {
        let mut wgan = Wgan::new(WganConfig {
            layers: 5,
            epochs: 4,
            batch_size: 64,
            n_critic: 2,
            g_output_gain: gain,
            seed: 7,
            ..WganConfig::default()
        });
        wgan.train(&data.train.x);
        let score = mean_auroc(&mut wgan, &data.attack_tests);
        println!("{gain:>6} {score:>8.3}");
        rows.push(format!("{gain},{score:.4}"));
    }
    write_csv("ablation_gain.csv", "gain,auroc", &rows);

    // --- Ablation 3: window length w ------------------------------------
    println!("\nAblation 3 — snapshot window length w (paper: 10)");
    println!("{:>4} {:>8}", "w", "AUROC");
    let mut rows = Vec::new();
    for w in [4usize, 10, 20] {
        let d = build_data(&fleet, w);
        let mut wgan = Wgan::new(WganConfig {
            layers: 5,
            epochs: 4,
            batch_size: 64,
            n_critic: 2,
            window: w,
            seed: 7,
            ..WganConfig::default()
        });
        wgan.train(&d.train.x);
        let score = mean_auroc(&mut wgan, &d.attack_tests);
        println!("{w:>4} {score:>8.3}");
        rows.push(format!("{w},{score:.4}"));
    }
    write_csv("ablation_window.csv", "window,auroc", &rows);

    // --- Ablation 4: threshold percentile p -----------------------------
    println!("\nAblation 4 — threshold percentile p (paper: 99–99.99)");
    println!("{:>7} {:>10} {:>10}", "p", "benignFPR", "attackTPR");
    let mut wgan = Wgan::new(WganConfig {
        layers: 5,
        epochs: 4,
        batch_size: 64,
        n_critic: 2,
        seed: 7,
        ..WganConfig::default()
    });
    wgan.train(&data.train.x);
    let train_scores = wgan.score_batch(&data.train.x);
    let benign_scores = wgan.score_batch(&data.benign_test.x);
    let attack_scores: Vec<(Vec<f32>, Vec<bool>)> = data
        .attack_tests
        .iter()
        .map(|ds| (wgan.score_batch(&ds.x), ds.labels.clone()))
        .collect();
    let mut rows = Vec::new();
    for p in [95.0, 99.0, 99.5, 99.9] {
        let tau = percentile(&train_scores, p);
        let fpr = rate_above(&benign_scores, tau);
        let mut tpr_sum = 0.0;
        for (scores, labels) in &attack_scores {
            let mal: Vec<f32> = scores
                .iter()
                .zip(labels)
                .filter(|(_, &l)| l)
                .map(|(&s, _)| s)
                .collect();
            tpr_sum += rate_above(&mal, tau);
        }
        let tpr = tpr_sum / attack_scores.len() as f64;
        println!("{p:>7} {fpr:>10.4} {tpr:>10.4}");
        rows.push(format!("{p},{fpr:.4},{tpr:.4}"));
    }
    write_csv(
        "ablation_percentile.csv",
        "percentile,benign_fpr,attack_tpr",
        &rows,
    );
    println!("\n(lower p trades benign FPR for attack TPR; the paper fixes p=99 for <1% FPR)");
}
