//! Fig 6: anatomy of one AFP attack — the gradient of the critic score on
//! a benign window, its sign pattern, and the resulting ±ε perturbation.

use crate::harness::{write_csv, Harness};
use vehigan_core::adversarial::{afp_attack, score_gradient};
use vehigan_features::FEATURE_NAMES;

/// Runs Fig 6 on the first benign test window (ε = 0.01) and writes
/// `results/fig6_gradient.csv` with one row per time step × feature.
pub fn run(harness: &mut Harness) {
    let eps = 0.01f32;
    let x = harness.benign_windows.x.take(&[0]);
    let member = &mut harness.pipeline.vehigan.members_mut()[0];
    let grad = score_gradient(member.wgan.critic_mut(), &x);
    let adv = afp_attack(member.wgan.critic_mut(), &x, eps);

    let before = member.wgan.score_batch(&x)[0];
    let after = member.wgan.score_batch(&adv)[0];

    let w = harness.benign_windows.window();
    let f = harness.benign_windows.features();
    println!("Fig 6 — AFP perturbation anatomy (window 0, ε = {eps})");
    println!(
        "anomaly score: {before:.4} → {after:.4} (threshold {:.4})",
        member.threshold
    );
    println!("gradient sign pattern (+ = value pushed up), rows = time steps:");
    let mut rows = Vec::with_capacity(w * f);
    for t in 0..w {
        let mut line = String::new();
        for (j, name) in FEATURE_NAMES.iter().enumerate().take(f) {
            let g = grad.get(&[0, t, j, 0]);
            let b = x.get(&[0, t, j, 0]);
            let a = adv.get(&[0, t, j, 0]);
            line.push(if g > 0.0 {
                '+'
            } else if g < 0.0 {
                '-'
            } else {
                '.'
            });
            rows.push(format!("{t},{name},{g:.6},{b:.6},{a:.6}"));
        }
        println!("  t{t:<2} {line}");
    }
    write_csv(
        "fig6_gradient.csv",
        "time,feature,gradient,benign,adversarial",
        &rows,
    );
    assert!(
        after > before,
        "AFP must raise the anomaly score (got {before} → {after})"
    );
}
