//! Fig 4: mean AUROC of `VEHIGAN_m^k` over the (m, k) grid.
//!
//! Expected shape (paper): AUROC climbs with m and k and plateaus at
//! m ≥ 5 with k ≥ m/2 — a handful of discriminators suffices.

use crate::harness::{write_csv, Harness};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use vehigan_metrics::auroc;

/// Random-subset trials averaged per (m, k) cell.
const TRIALS: usize = 5;

/// Runs Fig 4 and writes `results/fig4_ensemble_auroc.csv`.
///
/// Uses the harness score cache: an ensemble's scores are the mean of its
/// members' cached per-attack scores.
pub fn run(harness: &mut Harness) {
    let m_max = harness.pipeline.vehigan.m();
    let n_attacks = harness.attacks.len();
    let mut rng = StdRng::seed_from_u64(4);
    println!("Fig 4 — mean AUROC of VEHIGAN_m^k (rows m, cols k)");
    print!("{:>4}", "m\\k");
    for k in 1..=m_max {
        print!(" {k:>6}");
    }
    println!();

    let mut rows = Vec::new();
    let mut plateau_ok = true;
    let mut cell_11 = 0.0;
    let mut cell_full = 0.0;
    for m in 1..=m_max {
        let mut line = format!("{m:>4}");
        let mut csv = format!("{m}");
        for k in 1..=m_max {
            if k > m {
                line.push_str("      -");
                csv.push(',');
                continue;
            }
            let mut total = 0.0;
            let trials = if k == m { 1 } else { TRIALS };
            for _ in 0..trials {
                let mut members: Vec<usize> = (0..m).collect();
                members.shuffle(&mut rng);
                members.truncate(k);
                let mut sum = 0.0;
                for ai in 0..n_attacks {
                    let scores = harness.ensemble_attack_scores(&members, ai);
                    sum += auroc(&scores, &harness.attack_windows[ai].labels);
                }
                total += sum / n_attacks as f64;
            }
            let avg = total / trials as f64;
            if m == 1 && k == 1 {
                cell_11 = avg;
            }
            if m == m_max && k == m_max {
                cell_full = avg;
            }
            if m >= 5 && k * 2 >= m && avg < cell_11 - 0.05 {
                plateau_ok = false;
            }
            line.push_str(&format!(" {avg:>6.3}"));
            csv.push_str(&format!(",{avg:.4}"));
        }
        println!("{line}");
        rows.push(csv);
    }
    let header = format!(
        "m,{}",
        (1..=m_max)
            .map(|k| format!("k{k}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    write_csv("fig4_ensemble_auroc.csv", &header, &rows);
    println!(
        "\nVEHIGAN_1^1 = {cell_11:.3}, VEHIGAN_{m_max}^{m_max} = {cell_full:.3} \
         (ensembling {} the single model); plateau band healthy: {plateau_ok}",
        if cell_full >= cell_11 {
            "matches or beats"
        } else {
            "trails"
        }
    );
}
