//! Shared server-driving helpers for the serve-plane benchmarks.
//!
//! `stream`, `slo`, and `tier0` all need the same scaffolding: a mixed
//! benign/attack city stream, tick slicing at BSM cadence, a
//! deterministic ingest→tick drive loop with optional overload burst,
//! int8 gate scoring in serve-sized tiles, and decision hashing /
//! latency accounting. This module is the single copy (the `stream` and
//! `slo` experiments used to carry near-identical private versions).

use crate::harness::Harness;
use std::ops::Range;
use std::time::Instant;
use vehigan_serve::{ServeMode, ServerConfig, ServerStats, StreamServer};
use vehigan_sim::{Bsm, SimConfig, TrafficSimulator, VehicleTrace, BSM_INTERVAL_S};
use vehigan_tensor::init::seeded_rng;
use vehigan_tensor::Tensor;
use vehigan_vasp::{inject, Attack, AttackParams, AttackPolicy};

/// Simulates a city fleet for a serve benchmark.
pub fn city_fleet(vehicles: usize, duration_s: f64, seed: u64) -> Vec<VehicleTrace> {
    TrafficSimulator::new(SimConfig {
        n_vehicles: vehicles,
        duration_s,
        seed,
        ..SimConfig::default()
    })
    .run()
}

/// Mixed benign/attack stream: every `1/attacker_fraction`-th vehicle
/// runs a VASP attack (cycling over position/speed/heading families,
/// falsified values inside RSU guard field limits), all BSMs interleaved
/// in arrival order. Returns the stream and the attacker count.
pub fn mixed_stream(
    fleet: &[VehicleTrace],
    seed: u64,
    attacker_fraction: f64,
) -> (Vec<Bsm>, usize) {
    let attacks: Vec<Attack> = ["RandomPosition", "RandomSpeed", "HighHeadingYawRate"]
        .iter()
        .map(|n| Attack::by_name(n).expect("catalog attack"))
        .collect();
    let mut rng = seeded_rng(seed);
    let every = (1.0 / attacker_fraction) as usize;
    let mut stream = Vec::new();
    let mut attackers = 0usize;
    for (i, trace) in fleet.iter().enumerate() {
        if i % every == 0 {
            let attacked = inject(
                trace,
                attacks[attackers % attacks.len()],
                AttackPolicy::Persistent,
                &AttackParams::default(),
                &mut rng,
            );
            stream.extend_from_slice(&attacked.trace.bsms);
            attackers += 1;
        } else {
            stream.extend_from_slice(&trace.bsms);
        }
    }
    stream.sort_by(|a, b| {
        a.timestamp
            .partial_cmp(&b.timestamp)
            .unwrap()
            .then(a.vehicle_id.cmp(&b.vehicle_id))
    });
    (stream, attackers)
}

/// Groups a timestamp-sorted stream into per-tick index ranges of
/// [`BSM_INTERVAL_S`] width (empty slices included, so the drive loop
/// ticks at real cadence).
pub fn slice_ranges(stream: &[Bsm]) -> Vec<Range<usize>> {
    let mut ranges = Vec::new();
    let mut start = 0usize;
    let mut slice_end = BSM_INTERVAL_S;
    let mut i = 0usize;
    while i < stream.len() {
        while i < stream.len() && stream[i].timestamp < slice_end {
            i += 1;
        }
        ranges.push(start..i);
        start = i;
        slice_end += BSM_INTERVAL_S;
    }
    ranges
}

/// Scores flat windows through the int8 gate in serve-sized tiles.
pub fn gate_scores(harness: &Harness, members: &[usize], x: &Tensor) -> Vec<f32> {
    let shape = x.shape();
    let (n, len) = (shape[0], shape[1] * shape[2] * shape[3]);
    let mut scores = Vec::with_capacity(n);
    let mut start = 0;
    while start < n {
        let end = (start + vehigan_serve::SCORE_TILE).min(n);
        let tile = Tensor::from_vec(
            x.as_slice()[start * len..end * len].to_vec(),
            &[end - start, shape[1], shape[2], shape[3]],
        );
        scores.extend_from_slice(
            &harness
                .pipeline
                .vehigan
                .score_with_members_int8(members, &tile)
                .unwrap()
                .scores,
        );
        start = end;
    }
    scores
}

/// An overload burst: deliver `multiplier` tick-slices per server tick
/// for `ticks` consecutive ticks starting at `at_tick`.
#[derive(Debug, Clone, Copy)]
pub struct Burst {
    /// First bursting tick.
    pub at_tick: u64,
    /// Tick-slices delivered per tick while bursting.
    pub multiplier: usize,
    /// Consecutive bursting ticks.
    pub ticks: u64,
}

/// Everything one serving run produces that gates and reports need.
/// Every field except the wall-clock ones (`tick_lat`, `elapsed_s`) is a
/// pure function of the stream and the server configuration, so two
/// identical runs must agree on all of them — the determinism checks
/// compare `fnv` and `stats` directly.
pub struct DriveOutcome {
    /// Decisions emitted across the run.
    pub decisions: u64,
    /// Decisions with `flagged` set.
    pub flagged: u64,
    /// FNV-1a over the full bit pattern of every decision, in emission
    /// order: two runs agree iff they emitted the same decisions in the
    /// same order.
    pub fnv: u64,
    /// Windows shed before the burst's first tick (equals `stats.shed`
    /// when the run has no burst).
    pub shed_steady: u64,
    /// Final server counters (includes shed/escalated/tier counters).
    pub stats: ServerStats,
    /// Server mode at the end of the run.
    pub final_mode: ServeMode,
    /// `(tick wall ms, decisions that tick)`, scoring ticks only.
    pub tick_lat: Vec<(f64, usize)>,
    /// Total ingest+tick wall time.
    pub elapsed_s: f64,
}

/// Folds one decision into an FNV-1a decision hash.
fn fnv_decision(h: u64, d: &vehigan_serve::Decision) -> u64 {
    let mut h = h;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    };
    mix(&d.vehicle.0.to_le_bytes());
    mix(&d.timestamp.to_bits().to_le_bytes());
    mix(&d.score.to_bits().to_le_bytes());
    mix(&[d.escalated as u8, d.flagged as u8, d.suppressed as u8]);
    h
}

/// Drives one server over the sliced stream — ingest then tick per
/// slice, optional overload burst by time compression — then keeps
/// ticking until the backlog drains (bounded at 4096 drain ticks).
/// Panicking ingest workers and an undrained queue are hard failures.
pub fn drive(
    harness: &Harness,
    stream: &[Bsm],
    ranges: &[Range<usize>],
    config: ServerConfig,
    burst: Option<Burst>,
) -> DriveOutcome {
    drive_observed(harness, stream, ranges, config, burst, |_| {})
}

/// [`drive`] with a per-decision observer, called in emission order —
/// the `tier0` bench uses it to attribute suppression to benign vs
/// attacker vehicles without materializing every decision.
pub fn drive_observed(
    harness: &Harness,
    stream: &[Bsm],
    ranges: &[Range<usize>],
    config: ServerConfig,
    burst: Option<Burst>,
    mut observe: impl FnMut(&vehigan_serve::Decision),
) -> DriveOutcome {
    let mut server = StreamServer::new(
        &harness.pipeline.vehigan,
        harness.pipeline.scaler.clone(),
        config,
    )
    .expect("server builds");

    let mut out = DriveOutcome {
        decisions: 0,
        flagged: 0,
        fnv: 0xcbf2_9ce4_8422_2325,
        shed_steady: 0,
        stats: ServerStats::default(),
        final_mode: ServeMode::Normal,
        tick_lat: Vec::new(),
        elapsed_s: 0.0,
    };
    let mut cursor = 0usize;
    let mut tick = 0u64;
    let mut drain_ticks = 0u32;
    loop {
        let mult = match burst {
            Some(b) if tick >= b.at_tick && tick < b.at_tick + b.ticks => b.multiplier,
            _ => 1,
        };
        let mut consumed = 0usize;
        let start = ranges.get(cursor).map_or(stream.len(), |r| r.start);
        let mut end = start;
        while consumed < mult && cursor < ranges.len() {
            end = ranges[cursor].end;
            cursor += 1;
            consumed += 1;
        }
        if consumed == 0 {
            if server.pending_windows() == 0 || drain_ticks >= 4096 {
                break;
            }
            drain_ticks += 1;
        }
        let t0 = Instant::now();
        let report = server.ingest_batch(&stream[start..end]);
        assert!(report.panicked_shards.is_empty(), "ingest worker panicked");
        let ticked = server.tick().expect("tick scores");
        let dt = t0.elapsed().as_secs_f64();
        out.elapsed_s += dt;
        if !ticked.is_empty() {
            out.tick_lat.push((dt * 1000.0, ticked.len()));
        }
        for d in &ticked {
            out.fnv = fnv_decision(out.fnv, d);
            out.flagged += d.flagged as u64;
            observe(d);
        }
        out.decisions += ticked.len() as u64;
        if let Some(b) = burst {
            if tick < b.at_tick {
                out.shed_steady = server.stats().shed;
            }
        }
        tick += 1;
    }
    assert_eq!(server.pending_windows(), 0, "service failed to drain");
    out.stats = server.stats();
    if burst.is_none() {
        out.shed_steady = out.stats.shed;
    }
    out.final_mode = server.mode();
    out
}

/// Decision-weighted latency percentile over `(ms, n_decisions)` ticks.
pub fn latency_pct(tick_lat: &mut [(f64, usize)], decisions: u64, p: f64) -> f64 {
    tick_lat.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let target = ((p / 100.0 * decisions as f64).ceil() as usize).max(1);
    let mut seen = 0usize;
    for &(ms, n) in tick_lat.iter() {
        seen += n;
        if seen >= target {
            return ms;
        }
    }
    tick_lat.last().map_or(0.0, |&(ms, _)| ms)
}
