//! City-scale streaming service benchmark: sustained BSMs/sec, decision
//! latency, and gate-accuracy accounting for `vehigan-serve`.
//!
//! Run via `vehigan-bench stream --scale quick [--vehicles N] [--duration S]`
//! (trains the quick system, drives the serve data plane with simulated
//! mixed benign/attack traffic, writes `results/BENCH_stream.json`), or
//! the criterion bench `cargo bench -p vehigan-bench --bench stream` for
//! statistical rigor on the per-tick scoring half.
//!
//! The run **gates** its own acceptance criteria and panics when they
//! fail (so the CI smoke step catches regressions):
//!
//! - gated batched serving sustains ≥ 3× the BSMs/sec of the naive
//!   pre-serve path (per-window f32 `score_with_members` on a
//!   `StreamTracker`);
//! - AUROC drift of gate+escalation vs always-tier-2 over the 35-attack
//!   Table III campaign ≤ 0.01;
//! - the service fully drains its queue and emits exactly one decision
//!   per completed window.

use crate::experiments::serve_driver::{
    city_fleet, drive, gate_scores, latency_pct, mixed_stream, slice_ranges,
};
use crate::harness::{results_dir, Harness};
use std::time::Instant;
use vehigan_features::StreamTracker;
use vehigan_metrics::{auroc, percentile};
use vehigan_serve::{escalation_threshold, EscalationPolicy, ServerConfig};
use vehigan_sim::Bsm;

/// Minimum required BSMs/sec speedup of the gated batched service over
/// naive per-window f32 scoring (ISSUE gate).
pub const MIN_SPEEDUP: f64 = 3.0;

/// Maximum tolerated AUROC drift of gate+escalation vs always-tier-2
/// over the attack campaign (ISSUE gate).
pub const AUROC_DELTA_BUDGET: f64 = 0.01;

/// Escalation cutoff: this percentile of benign gate scores, so roughly
/// `100 − p` percent of benign traffic is re-scored by the f32 ensemble.
/// Because the gate runs the **full-width** int8 ensemble, non-escalated
/// windows already carry scores within int8 quantization error of the
/// f32 tier (max |Δ| ≈ 0.004 per `BENCH_quant.json`, CI-gated at 0.01),
/// so drift stays inside the budget at *any* percentile — escalation is
/// f32 confirmation of near-threshold windows, not an accuracy crutch.
/// That frees the percentile to be chosen for throughput; 97.5 keeps the
/// f32 tier at ~2.5 % of benign traffic while still sitting below the
/// detection percentile (99), so windows the ensemble would flag all
/// cross the gate (DESIGN.md §10).
pub const ESCALATION_PERCENTILE: f64 = 97.5;

/// Fraction of simulated vehicles transmitting falsified BSMs.
const ATTACKER_FRACTION: f64 = 0.1;

/// Runs the stream benchmark on a trained harness and writes
/// `results/BENCH_stream.json`.
pub fn run(harness: &mut Harness, vehicles: usize, duration_s: f64) {
    println!(
        "Streaming service benchmark: {vehicles} vehicles x {duration_s:.1} s \
         (gated batched serve vs naive per-window f32)"
    );
    harness
        .pipeline
        .compile_int8()
        .expect("int8 backend compiles");

    let k = harness.pipeline.vehigan.k();
    let members: Vec<usize> = (0..k).collect();
    // Full-width gate: same members as tier-2, so non-escalated windows
    // keep scores within int8 quantization error of the f32 path and the
    // AUROC drift stays inside the budget. (A half-width gate is ~1.1×
    // faster end-to-end but drifts ~0.05 on constant-offset attacks.)
    let gate_members = members.clone();

    // --- Escalation-threshold calibration on held-out benign windows. ---
    let benign_gate = gate_scores(harness, &gate_members, &harness.benign_windows.x);
    let tau_esc = escalation_threshold(&benign_gate, ESCALATION_PERCENTILE);
    let tau_detect = percentile(&benign_gate, 99.0);
    println!(
        "gate: {} of {} members, tau_esc {tau_esc:.4} (p{ESCALATION_PERCENTILE} benign) \
         vs detection tau {tau_detect:.4} (p99)",
        gate_members.len(),
        members.len()
    );

    // --- AUROC drift: gate+escalation vs always-tier-2, 35 attacks. ---
    let mut max_delta = 0.0f64;
    let mut mean_delta = 0.0f64;
    let mut worst_attack = String::new();
    let mut campaign_windows = 0usize;
    let mut campaign_escalated = 0usize;
    let n_attacks = harness.attacks.len();
    for ai in 0..n_attacks {
        let ds = &harness.attack_windows[ai];
        let tier2 = harness.ensemble_attack_scores(&members, ai);
        let gate = gate_scores(harness, &gate_members, &ds.x);
        let gated: Vec<f32> = gate
            .iter()
            .zip(&tier2)
            .map(|(&g, &t2)| if g > tau_esc { t2 } else { g })
            .collect();
        campaign_windows += gate.len();
        campaign_escalated += gate.iter().filter(|&&g| g > tau_esc).count();
        let delta = (auroc(&tier2, &ds.labels) - auroc(&gated, &ds.labels)).abs();
        mean_delta += delta;
        if delta > max_delta {
            max_delta = delta;
            worst_attack = harness.attacks[ai].name().to_string();
        }
    }
    mean_delta /= n_attacks as f64;
    let campaign_esc_rate = campaign_escalated as f64 / campaign_windows.max(1) as f64;
    println!(
        "Table III AUROC drift over {n_attacks} attacks: mean {mean_delta:.5}, \
         max {max_delta:.5} ({worst_attack}); campaign escalation rate {campaign_esc_rate:.3}"
    );

    // --- Simulated city traffic. ---
    let fleet = city_fleet(vehicles, duration_s, 7);
    let (stream, attackers) = mixed_stream(&fleet, 23, ATTACKER_FRACTION);
    let ranges = slice_ranges(&stream);
    let expected_windows: usize = fleet.iter().map(|t| t.bsms.len().saturating_sub(10)).sum();
    println!(
        "traffic: {} BSMs from {vehicles} vehicles ({attackers} attackers), \
         {expected_windows} complete windows",
        stream.len()
    );

    // --- Gated batched serve run, one tick per BSM interval. ---
    let scaler = harness.pipeline.scaler.clone();
    let mut out = drive(
        harness,
        &stream,
        &ranges,
        ServerConfig {
            n_shards: 4,
            policy: EscalationPolicy::Threshold(tau_esc),
            members: Some(members.clone()),
            gate_members: Some(gate_members.clone()),
            ..ServerConfig::default()
        },
        None,
    );
    let decisions = out.decisions as usize;
    let flagged = out.flagged as usize;
    assert_eq!(
        decisions, expected_windows,
        "decisions != completed windows (equivalence check)"
    );
    assert_eq!(out.stats.ingested, stream.len() as u64);
    let gated_bsm_rate = stream.len() as f64 / out.elapsed_s;
    let stream_esc_rate = out.stats.escalated as f64 / out.stats.windows_scored.max(1) as f64;

    // Decision latency: each decision inherits its tick's ingest+score
    // wall time (windows completed mid-tick wait for the batch).
    let (p50_ms, p99_ms) = (
        latency_pct(&mut out.tick_lat, out.decisions, 50.0),
        latency_pct(&mut out.tick_lat, out.decisions, 99.0),
    );

    // --- Naive baseline: StreamTracker + per-window f32 scoring. ---
    // Measured on a vehicle-subset sub-stream (same cadence, same
    // windows-per-BSM duty, so BSMs/sec is directly comparable) to keep
    // the benchmark tractable at city scale.
    let base_vehicles = vehicles.min(64);
    let sub: Vec<Bsm> = stream
        .iter()
        .filter(|b| (b.vehicle_id.0 as usize) < base_vehicles)
        .copied()
        .collect();
    // One warm-up pass then best-of-3: the sub-stream run is short
    // (< 1 s), so a single pass is at the mercy of scheduler noise on a
    // shared host; the minimum is the honest cost of the naive path.
    let mut naive_windows = 0usize;
    let mut naive_s = f64::INFINITY;
    for pass in 0..4 {
        let mut tracker = StreamTracker::new(10, scaler.clone());
        let mut windows = 0usize;
        let t0 = Instant::now();
        for bsm in &sub {
            if let Some(snapshot) = tracker.push(bsm) {
                harness
                    .pipeline
                    .vehigan
                    .score_with_members(&members, snapshot)
                    .unwrap();
                windows += 1;
            }
        }
        let dt = t0.elapsed().as_secs_f64();
        naive_windows = windows;
        if pass > 0 {
            naive_s = naive_s.min(dt);
        }
    }
    let naive_bsm_rate = sub.len() as f64 / naive_s;
    let speedup = gated_bsm_rate / naive_bsm_rate;

    println!(
        "{:>28} {:>14} {:>12} {:>12}",
        "path", "BSMs/sec", "p50 (ms)", "p99 (ms)"
    );
    println!(
        "{:>28} {:>14.0} {:>12.2} {:>12.2}",
        format!("gated serve ({vehicles} veh)"),
        gated_bsm_rate,
        p50_ms,
        p99_ms
    );
    println!(
        "{:>28} {:>14.0} {:>12} {:>12}",
        format!("naive f32 ({base_vehicles} veh)"),
        naive_bsm_rate,
        "-",
        "-"
    );
    println!(
        "speedup {speedup:.2}x, escalation rate {stream_esc_rate:.3}, \
         {flagged} windows flagged of {decisions}"
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!(
        "  \"bench\": \"stream\",\n  \"vehicles\": {vehicles},\n  \"duration_s\": {duration_s},\n  \"bsms\": {},\n  \"windows\": {decisions},\n  \"attackers\": {attackers},\n  \"shards\": 4,\n  \"k\": {k},\n  \"gate_members\": {},\n",
        stream.len(),
        gate_members.len(),
    ));
    json.push_str(&format!(
        "  \"gated\": {{\"bsms_per_sec\": {gated_bsm_rate:.0}, \"p50_ms\": {p50_ms:.3}, \"p99_ms\": {p99_ms:.3}, \"escalation_rate\": {stream_esc_rate:.4}, \"flagged\": {flagged}}},\n"
    ));
    json.push_str(&format!(
        "  \"naive\": {{\"bsms_per_sec\": {naive_bsm_rate:.0}, \"vehicles\": {base_vehicles}, \"windows\": {naive_windows}}},\n"
    ));
    json.push_str(&format!(
        "  \"calibration\": {{\"percentile\": {ESCALATION_PERCENTILE}, \"tau_esc\": {tau_esc:.5}, \"tau_detect_p99\": {tau_detect:.5}}},\n"
    ));
    json.push_str(&format!(
        "  \"auroc\": {{\"attacks\": {n_attacks}, \"mean_delta\": {mean_delta:.5}, \"max_delta\": {max_delta:.5}, \"worst_attack\": \"{worst_attack}\", \"campaign_escalation_rate\": {campaign_esc_rate:.4}, \"budget\": {AUROC_DELTA_BUDGET}}},\n"
    ));
    json.push_str(&format!(
        "  \"gates\": {{\"min_speedup\": {MIN_SPEEDUP}, \"speedup\": {speedup:.2}, \"speedup_ok\": {}, \"auroc_ok\": {}, \"drained\": true}}\n}}\n",
        speedup >= MIN_SPEEDUP,
        max_delta <= AUROC_DELTA_BUDGET,
    ));
    let path = results_dir().join("BENCH_stream.json");
    std::fs::write(&path, json).expect("write BENCH_stream.json");
    eprintln!("[harness] wrote {}", path.display());

    // --- Gates (ISSUE acceptance criteria). ---
    assert!(
        max_delta <= AUROC_DELTA_BUDGET,
        "gate+escalation AUROC drift {max_delta:.5} exceeds the {AUROC_DELTA_BUDGET} budget ({worst_attack})"
    );
    assert!(
        speedup >= MIN_SPEEDUP,
        "gated serve speedup {speedup:.2}x below the required {MIN_SPEEDUP}x"
    );
    println!(
        "gates: speedup {speedup:.2}x ≥ {MIN_SPEEDUP}x ✓, AUROC drift {max_delta:.5} ≤ {AUROC_DELTA_BUDGET} ✓, drained ✓"
    );
}
