//! Fig 7: adversarial robustness of the ensemble `VEHIGAN_m^k`.
//!
//! - **7a** — gray-box: AFP samples crafted on the single best model
//!   (which sits inside the ensemble) evaluated against `VEHIGAN_m^k`;
//! - **7b** — adaptive white-box: the attacker jointly ascends all m
//!   critics' gradients, and the ensemble still holds (the paper's
//!   headline ≈92% FPR improvement).

use crate::experiments::fig5::{benign_sample, test_thresholds};
use crate::harness::{rate_above, write_csv, Harness};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use vehigan_core::adversarial::{afp_attack, multi_model_afp};
use vehigan_tensor::Tensor;

const EPS: f32 = 0.01;
const TRIALS: usize = 8;

/// Mean FPR of `VEHIGAN_m^k` over random k-subsets, given each member's
/// scores on the adversarial sample set and per-member (test-calibrated)
/// thresholds; the ensemble threshold is the mean of the deployed
/// members' τ (§III-F).
fn ensemble_fpr(
    taus: &[f32],
    member_adv_scores: &[Vec<f32>],
    m: usize,
    k: usize,
    rng: &mut StdRng,
) -> f64 {
    let trials = if k == m { 1 } else { TRIALS };
    let mut total = 0.0;
    for _ in 0..trials {
        let mut members: Vec<usize> = (0..m).collect();
        members.shuffle(rng);
        members.truncate(k);
        let n = member_adv_scores[0].len();
        let mut mean_scores = vec![0.0f32; n];
        for &mi in &members {
            for (acc, &s) in mean_scores.iter_mut().zip(&member_adv_scores[mi]) {
                *acc += s / k as f32;
            }
        }
        let tau: f32 = members.iter().map(|&mi| taus[mi]).sum::<f32>() / k as f32;
        total += rate_above(&mean_scores, tau);
    }
    total / trials as f64
}

fn print_grid(
    taus: &[f32],
    member_adv_scores: &[Vec<f32>],
    m_max: usize,
    seed: u64,
) -> (Vec<String>, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    print!("{:>4}", "m\\k");
    for k in 1..=m_max {
        print!(" {k:>6}");
    }
    println!();
    let mut rows = Vec::new();
    let mut robust_fpr = 0.0;
    for m in 1..=m_max {
        let mut line = format!("{m:>4}");
        let mut csv = format!("{m}");
        for k in 1..=m_max {
            if k > m {
                line.push_str("      -");
                csv.push(',');
                continue;
            }
            let fpr = ensemble_fpr(taus, member_adv_scores, m, k, &mut rng);
            if m == m_max && k == m_max {
                robust_fpr = fpr;
            }
            line.push_str(&format!(" {fpr:>6.3}"));
            csv.push_str(&format!(",{fpr:.4}"));
        }
        println!("{line}");
        rows.push(csv);
    }
    (rows, robust_fpr)
}

fn score_all_members(harness: &mut Harness, adv: &Tensor) -> Vec<Vec<f32>> {
    let m = harness.pipeline.vehigan.m();
    (0..m)
        .map(|i| {
            harness.pipeline.vehigan.members_mut()[i]
                .wgan
                .score_batch(adv)
        })
        .collect()
}

/// Fig 7a: gray-box single-surrogate AFP vs the ensemble.
///
/// Returns the FPR of the full ensemble (for the headline comparison).
pub fn run_7a(harness: &mut Harness) -> f64 {
    let benign = benign_sample(harness);
    let m_max = harness.pipeline.vehigan.m();
    let taus = test_thresholds(harness, &benign);
    // Surrogate = best member (inside the ensemble) — the constrained
    // attacker of §V-B.2.
    let adv = {
        let surrogate = &mut harness.pipeline.vehigan.members_mut()[0];
        afp_attack(surrogate.wgan.critic_mut(), &benign, EPS)
    };
    let member_scores = score_all_members(harness, &adv);
    let surrogate_fpr = rate_above(&member_scores[0], taus[0]);
    println!("Fig 7a — FPR of VEHIGAN_m^k under gray-box AFP (ε = {EPS}, surrogate in ensemble)");
    let (rows, ens_fpr) = print_grid(&taus, &member_scores, m_max, 71);
    let header = format!(
        "m,{}",
        (1..=m_max)
            .map(|k| format!("k{k}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    write_csv("fig7a_afp_graybox.csv", &header, &rows);
    println!(
        "\nsurrogate (white-box) FPR {surrogate_fpr:.3} vs full ensemble FPR {ens_fpr:.3} — \
         randomized ensembling absorbs gray-box transfer (paper Fig 7a)"
    );
    ens_fpr
}

/// Fig 7b: adaptive multi-model white-box AFP vs the ensemble.
///
/// Returns `(single_whitebox_fpr, ensemble_fpr)` for the headline ≈92%
/// improvement computation.
pub fn run_7b(harness: &mut Harness) -> (f64, f64) {
    let benign = benign_sample(harness);
    let m_max = harness.pipeline.vehigan.m();
    let taus = test_thresholds(harness, &benign);

    // Baseline: plain white-box AFP on the single best model.
    let single_fpr = {
        let member = &mut harness.pipeline.vehigan.members_mut()[0];
        let adv = afp_attack(member.wgan.critic_mut(), &benign, EPS);
        let scores = member.wgan.score_batch(&adv);
        rate_above(&scores, taus[0])
    };

    println!("Fig 7b — FPR of VEHIGAN_m^k under adaptive multi-model AFP (ε = {EPS})");
    print!("{:>4}", "m\\k");
    for k in 1..=m_max {
        print!(" {k:>6}");
    }
    println!();
    let mut rows = Vec::new();
    let mut rng = StdRng::seed_from_u64(72);
    let mut full_fpr = 0.0;
    for m in 1..=m_max {
        // The attacker jointly differentiates all m deployed critics.
        let adv = {
            let members = harness.pipeline.vehigan.members_mut();
            let mut critics: Vec<&mut vehigan_tensor::Sequential> = members[..m]
                .iter_mut()
                .map(|c| c.wgan.critic_mut())
                .collect();
            multi_model_afp(&mut critics, &benign, EPS)
        };
        let member_scores = score_all_members(harness, &adv);
        let mut line = format!("{m:>4}");
        let mut csv = format!("{m}");
        for k in 1..=m_max {
            if k > m {
                line.push_str("      -");
                csv.push(',');
                continue;
            }
            let fpr = ensemble_fpr(&taus, &member_scores, m, k, &mut rng);
            if m == m_max && k == m_max {
                full_fpr = fpr;
            }
            line.push_str(&format!(" {fpr:>6.3}"));
            csv.push_str(&format!(",{fpr:.4}"));
        }
        println!("{line}");
        rows.push(csv);
    }
    let header = format!(
        "m,{}",
        (1..=m_max)
            .map(|k| format!("k{k}"))
            .collect::<Vec<_>>()
            .join(",")
    );
    write_csv("fig7b_afp_multimodel.csv", &header, &rows);

    let improvement = if single_fpr > 0.0 {
        (single_fpr - full_fpr) / single_fpr * 100.0
    } else {
        0.0
    };
    println!(
        "\nheadline: single white-box FPR {single_fpr:.3} → VEHIGAN_{m_max}^{m_max} FPR {full_fpr:.3} \
         = {improvement:.0}% FPR improvement under the adaptive attack (paper: ≈92%)"
    );
    (single_fpr, full_fpr)
}
