//! # vehigan-sim
//!
//! Microscopic traffic and BSM simulation substrate for the VehiGAN
//! reproduction — the stand-in for the paper's SUMO + Veins + OMNeT++
//! stack (§IV-A).
//!
//! The pipeline is: build a signalized grid [`network::RoadNetwork`] →
//! sample per-vehicle [`route::Route`]s (straights + quarter-turn arcs) →
//! integrate [`idm::IdmParams`] longitudinal dynamics → emit 10 Hz
//! [`Bsm`] streams through a [`SensorModel`].
//!
//! Benign traces are kinematically coherent by construction: heading is the
//! route tangent, yaw rate is `curvature × speed`, `Δv = a·Δt` holds per
//! step. Misbehaviors (crate `vehigan-vasp`) break exactly these relations.
//!
//! # Example
//!
//! ```
//! use vehigan_sim::{SimConfig, TrafficSimulator};
//!
//! let config = SimConfig { n_vehicles: 3, duration_s: 30.0, ..SimConfig::default() };
//! let traces = TrafficSimulator::new(config).run();
//! assert_eq!(traces.len(), 3);
//! let bsm = &traces[0].bsms[10];
//! assert!(bsm.speed >= 0.0);
//! ```

#![warn(missing_docs)]

pub mod idm;
pub mod network;
pub mod route;
pub mod sensor;
mod simulator;
mod types;

pub use sensor::SensorModel;
pub use simulator::{SimConfig, TrafficSimulator};
pub use types::{Bsm, VehicleId, VehicleTrace, BSM_INTERVAL_S};
