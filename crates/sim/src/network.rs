//! Grid road network with signalized intersections.
//!
//! Stand-in for the Boston network that VASP/Veins uses: a Manhattan-style
//! grid whose edges carry speed limits and whose intersections carry
//! two-phase traffic signals. The point is not geographic fidelity but
//! producing benign kinematics with the same structure — cruising,
//! queueing at reds, and quarter-turns with coherent heading/yaw-rate.

use rand::rngs::StdRng;
use rand::Rng;

/// A compass direction of travel along the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Direction {
    /// +X travel (heading 0).
    East,
    /// +Y travel (heading π/2).
    North,
    /// −X travel (heading π).
    West,
    /// −Y travel (heading −π/2).
    South,
}

impl Direction {
    /// Heading angle in radians (CCW from +X).
    pub fn heading(self) -> f64 {
        use std::f64::consts::FRAC_PI_2;
        match self {
            Direction::East => 0.0,
            Direction::North => FRAC_PI_2,
            Direction::West => std::f64::consts::PI,
            Direction::South => -FRAC_PI_2,
        }
    }

    /// Unit vector of travel.
    pub fn unit(self) -> (f64, f64) {
        match self {
            Direction::East => (1.0, 0.0),
            Direction::North => (0.0, 1.0),
            Direction::West => (-1.0, 0.0),
            Direction::South => (0.0, -1.0),
        }
    }

    /// Direction after a left (CCW) turn.
    pub fn left(self) -> Direction {
        match self {
            Direction::East => Direction::North,
            Direction::North => Direction::West,
            Direction::West => Direction::South,
            Direction::South => Direction::East,
        }
    }

    /// Direction after a right (CW) turn.
    pub fn right(self) -> Direction {
        match self {
            Direction::East => Direction::South,
            Direction::South => Direction::West,
            Direction::West => Direction::North,
            Direction::North => Direction::East,
        }
    }

    /// Whether travel is along the X axis.
    pub fn is_east_west(self) -> bool {
        matches!(self, Direction::East | Direction::West)
    }
}

/// Grid coordinates of an intersection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct NodeId {
    /// Column index.
    pub ix: i32,
    /// Row index.
    pub iy: i32,
}

/// A two-phase fixed-time traffic signal at an intersection.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Signal {
    /// Full cycle length in seconds.
    pub cycle_s: f64,
    /// Phase offset in seconds.
    pub offset_s: f64,
    /// Fraction of the cycle that is green for east–west traffic.
    pub ew_green_fraction: f64,
}

impl Signal {
    /// Whether the approach from `dir` sees green at time `t`.
    pub fn is_green(&self, dir: Direction, t: f64) -> bool {
        let phase = ((t + self.offset_s) % self.cycle_s + self.cycle_s) % self.cycle_s;
        let ew_green = phase < self.ew_green_fraction * self.cycle_s;
        if dir.is_east_west() {
            ew_green
        } else {
            !ew_green
        }
    }

    /// Seconds until the approach from `dir` next turns green (0 if green).
    pub fn time_to_green(&self, dir: Direction, t: f64) -> f64 {
        if self.is_green(dir, t) {
            return 0.0;
        }
        let phase = ((t + self.offset_s) % self.cycle_s + self.cycle_s) % self.cycle_s;
        let boundary = self.ew_green_fraction * self.cycle_s;
        if dir.is_east_west() {
            // Currently in the NS-green tail; wait until the cycle wraps.
            self.cycle_s - phase
        } else {
            boundary - phase
        }
    }
}

/// The grid road network.
///
/// Intersections sit at `(ix · spacing, iy · spacing)` for
/// `0 ≤ ix < nx`, `0 ≤ iy < ny`. Every grid line is a bidirectional road.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RoadNetwork {
    /// Number of columns of intersections.
    pub nx: i32,
    /// Number of rows of intersections.
    pub ny: i32,
    /// Block length in meters.
    pub spacing: f64,
    /// Speed limit on all edges in m/s (urban ≈ 13.9 m/s = 50 km/h).
    pub speed_limit: f64,
    signals: Vec<Signal>,
}

impl RoadNetwork {
    /// Builds a grid with randomized signal offsets.
    ///
    /// # Panics
    ///
    /// Panics if the grid is smaller than 2×2 or spacing is non-positive.
    pub fn grid(nx: i32, ny: i32, spacing: f64, speed_limit: f64, rng: &mut StdRng) -> Self {
        assert!(nx >= 2 && ny >= 2, "grid must be at least 2×2");
        assert!(spacing > 0.0, "spacing must be positive");
        assert!(speed_limit > 0.0, "speed limit must be positive");
        let signals = (0..nx * ny)
            .map(|_| Signal {
                cycle_s: rng.gen_range(40.0..80.0),
                offset_s: rng.gen_range(0.0..60.0),
                ew_green_fraction: rng.gen_range(0.4..0.6),
            })
            .collect();
        RoadNetwork {
            nx,
            ny,
            spacing,
            speed_limit,
            signals,
        }
    }

    /// World position of an intersection.
    pub fn node_position(&self, node: NodeId) -> (f64, f64) {
        (node.ix as f64 * self.spacing, node.iy as f64 * self.spacing)
    }

    /// Whether a node is inside the grid.
    pub fn contains(&self, node: NodeId) -> bool {
        node.ix >= 0 && node.ix < self.nx && node.iy >= 0 && node.iy < self.ny
    }

    /// The neighboring node reached by traveling `dir` from `node`, if any.
    pub fn neighbor(&self, node: NodeId, dir: Direction) -> Option<NodeId> {
        let (dx, dy) = dir.unit();
        let next = NodeId {
            ix: node.ix + dx as i32,
            iy: node.iy + dy as i32,
        };
        self.contains(next).then_some(next)
    }

    /// The signal at a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the grid.
    pub fn signal(&self, node: NodeId) -> &Signal {
        assert!(self.contains(node), "node {node:?} outside grid");
        &self.signals[(node.iy * self.nx + node.ix) as usize]
    }

    /// A uniformly random interior node.
    pub fn random_node(&self, rng: &mut StdRng) -> NodeId {
        NodeId {
            ix: rng.gen_range(0..self.nx),
            iy: rng.gen_range(0..self.ny),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    #[test]
    fn direction_turns_compose() {
        for d in [
            Direction::East,
            Direction::North,
            Direction::West,
            Direction::South,
        ] {
            assert_eq!(d.left().right(), d);
            assert_eq!(d.left().left().left().left(), d);
            assert_eq!(d.right().right(), d.left().left());
        }
    }

    #[test]
    fn heading_matches_unit_vector() {
        for d in [
            Direction::East,
            Direction::North,
            Direction::West,
            Direction::South,
        ] {
            let (ux, uy) = d.unit();
            assert!((d.heading().cos() - ux).abs() < 1e-12);
            assert!((d.heading().sin() - uy).abs() < 1e-12);
        }
    }

    #[test]
    fn grid_geometry() {
        let net = RoadNetwork::grid(4, 3, 200.0, 13.9, &mut rng());
        assert_eq!(net.node_position(NodeId { ix: 2, iy: 1 }), (400.0, 200.0));
        assert!(net.contains(NodeId { ix: 0, iy: 0 }));
        assert!(!net.contains(NodeId { ix: 4, iy: 0 }));
        assert!(!net.contains(NodeId { ix: -1, iy: 0 }));
    }

    #[test]
    fn neighbors_respect_bounds() {
        let net = RoadNetwork::grid(3, 3, 100.0, 13.9, &mut rng());
        let corner = NodeId { ix: 0, iy: 0 };
        assert!(net.neighbor(corner, Direction::West).is_none());
        assert!(net.neighbor(corner, Direction::South).is_none());
        assert_eq!(
            net.neighbor(corner, Direction::East),
            Some(NodeId { ix: 1, iy: 0 })
        );
    }

    #[test]
    fn signal_phases_are_complementary() {
        let sig = Signal {
            cycle_s: 60.0,
            offset_s: 0.0,
            ew_green_fraction: 0.5,
        };
        for t in [0.0, 10.0, 29.9, 30.1, 55.0, 61.0] {
            assert_ne!(
                sig.is_green(Direction::East, t),
                sig.is_green(Direction::North, t),
                "t={t}"
            );
        }
    }

    #[test]
    fn time_to_green_is_consistent() {
        let sig = Signal {
            cycle_s: 60.0,
            offset_s: 0.0,
            ew_green_fraction: 0.5,
        };
        // At t=35 EW is red (phase 35 ≥ 30); green returns at t=60.
        let wait = sig.time_to_green(Direction::East, 35.0);
        assert!((wait - 25.0).abs() < 1e-9);
        assert!(sig.is_green(Direction::East, 35.0 + wait + 1e-6));
        assert_eq!(sig.time_to_green(Direction::East, 5.0), 0.0);
    }

    #[test]
    fn signals_are_deterministic_per_seed() {
        let a = RoadNetwork::grid(3, 3, 100.0, 13.9, &mut rng());
        let b = RoadNetwork::grid(3, 3, 100.0, 13.9, &mut rng());
        let n = NodeId { ix: 1, iy: 1 };
        assert_eq!(a.signal(n), b.signal(n));
    }
}
