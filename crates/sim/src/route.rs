//! Route geometry: straight blocks joined by quarter-circle turn arcs.
//!
//! A route is a parametric curve indexed by arc length. Poses derived from
//! it are *exactly* kinematically consistent: heading is the curve tangent,
//! yaw rate is `curvature × speed`, so the physics relations of Table II
//! hold for benign traffic by construction (up to sensor noise).

use crate::network::{Direction, NodeId, RoadNetwork};
use rand::rngs::StdRng;
use rand::Rng;
use std::f64::consts::FRAC_PI_2;

/// A pose sampled from a route at some arc length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pose {
    /// East coordinate (m).
    pub x: f64,
    /// North coordinate (m).
    pub y: f64,
    /// Tangent heading (rad, CCW from +X).
    pub heading: f64,
    /// Signed curvature (1/m); positive turns left.
    pub curvature: f64,
}

/// One geometric piece of a route.
#[derive(Debug, Clone, PartialEq)]
pub enum Segment {
    /// A straight stretch starting at `(x0, y0)` with fixed `heading`.
    Straight {
        /// Start X (m).
        x0: f64,
        /// Start Y (m).
        y0: f64,
        /// Constant heading (rad).
        heading: f64,
        /// Length (m).
        length: f64,
    },
    /// A circular arc around `(cx, cy)`.
    Arc {
        /// Circle center X (m).
        cx: f64,
        /// Circle center Y (m).
        cy: f64,
        /// Turn radius (m).
        radius: f64,
        /// Angle from center to the arc start point (rad).
        phi0: f64,
        /// +1 for a left (CCW) turn, −1 for a right (CW) turn.
        sign: f64,
        /// Arc length (m).
        length: f64,
    },
}

impl Segment {
    /// Length of the segment in meters.
    pub fn length(&self) -> f64 {
        match *self {
            Segment::Straight { length, .. } | Segment::Arc { length, .. } => length,
        }
    }

    /// Pose at arc length `s` from the segment start.
    pub fn pose(&self, s: f64) -> Pose {
        match *self {
            Segment::Straight {
                x0, y0, heading, ..
            } => Pose {
                x: x0 + s * heading.cos(),
                y: y0 + s * heading.sin(),
                heading,
                curvature: 0.0,
            },
            Segment::Arc {
                cx,
                cy,
                radius,
                phi0,
                sign,
                ..
            } => {
                let phi = phi0 + sign * s / radius;
                Pose {
                    x: cx + radius * phi.cos(),
                    y: cy + radius * phi.sin(),
                    heading: phi + sign * FRAC_PI_2,
                    curvature: sign / radius,
                }
            }
        }
    }
}

/// A stop line on a route (signalized intersection approach).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopLine {
    /// Route arc length of the stop line.
    pub position: f64,
    /// The signalized node being approached.
    pub node: NodeId,
    /// Direction of approach (determines the signal phase that applies).
    pub approach: Direction,
}

/// A full route: segments plus cumulative lengths and stop lines.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    segments: Vec<Segment>,
    cumulative: Vec<f64>,
    stop_lines: Vec<StopLine>,
}

impl Route {
    /// Builds a route from explicit segments.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty or any segment has non-positive length.
    pub fn from_segments(segments: Vec<Segment>, stop_lines: Vec<StopLine>) -> Self {
        assert!(!segments.is_empty(), "route needs at least one segment");
        let mut cumulative = Vec::with_capacity(segments.len() + 1);
        let mut acc = 0.0;
        cumulative.push(0.0);
        for seg in &segments {
            assert!(seg.length() > 0.0, "segment length must be positive");
            acc += seg.length();
            cumulative.push(acc);
        }
        Route {
            segments,
            cumulative,
            stop_lines,
        }
    }

    /// Total route length in meters.
    pub fn total_length(&self) -> f64 {
        *self.cumulative.last().expect("nonempty")
    }

    /// Stop lines in increasing position order.
    pub fn stop_lines(&self) -> &[StopLine] {
        &self.stop_lines
    }

    /// The segments composing the route.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Pose at arc length `s` (clamped to the route extent).
    pub fn pose(&self, s: f64) -> Pose {
        let s = s.clamp(0.0, self.total_length());
        // Binary search for the containing segment.
        let idx = match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&s).expect("finite"))
        {
            Ok(i) => i.min(self.segments.len() - 1),
            Err(i) => i - 1,
        };
        let idx = idx.min(self.segments.len() - 1);
        self.segments[idx].pose(s - self.cumulative[idx])
    }

    /// Signed curvature at arc length `s`.
    pub fn curvature(&self, s: f64) -> f64 {
        self.pose(s).curvature
    }

    /// The next curve (arc) start at or after `s`, with its radius.
    pub fn next_curve(&self, s: f64) -> Option<(f64, f64)> {
        for (i, seg) in self.segments.iter().enumerate() {
            if let Segment::Arc { radius, .. } = seg {
                let start = self.cumulative[i];
                let end = start + seg.length();
                if end > s {
                    return Some((start.max(s), *radius));
                }
            }
        }
        None
    }

    /// The next stop line at or after `s`.
    pub fn next_stop_line(&self, s: f64) -> Option<&StopLine> {
        self.stop_lines.iter().find(|sl| sl.position >= s)
    }

    /// Generates a random route through `net` of at least `min_length`
    /// meters (or until the walk hits a dead end).
    ///
    /// The walk starts at a random node, travels block to block, and at
    /// each intersection goes straight with probability ~0.6, otherwise
    /// turns (only options that stay inside the grid are considered).
    /// Turns are quarter-circle arcs of radius `turn_radius`.
    ///
    /// # Panics
    ///
    /// Panics if `turn_radius` does not fit in a block
    /// (`2·turn_radius ≥ spacing`).
    pub fn random(net: &RoadNetwork, min_length: f64, turn_radius: f64, rng: &mut StdRng) -> Route {
        assert!(
            2.0 * turn_radius < net.spacing,
            "turn radius {turn_radius} too large for block spacing {}",
            net.spacing
        );
        // Random start with at least one outgoing edge.
        let dirs = [
            Direction::East,
            Direction::North,
            Direction::West,
            Direction::South,
        ];
        let (start, d0) = loop {
            let n = net.random_node(rng);
            let d = dirs[rng.gen_range(0..4)];
            if net.neighbor(n, d).is_some() {
                break (n, d);
            }
        };

        // Plan the node walk first: (node, outgoing direction) pairs.
        let mut walk: Vec<(NodeId, Direction)> = vec![(start, d0)];
        let mut length_estimate = 0.0;
        let mut node = start;
        let mut dir = d0;
        while length_estimate < min_length + net.spacing {
            let next = match net.neighbor(node, dir) {
                Some(n) => n,
                None => break,
            };
            // Choose the outgoing direction from `next`.
            let mut options: Vec<Direction> = Vec::with_capacity(3);
            for cand in [dir, dir.left(), dir.right()] {
                if net.neighbor(next, cand).is_some() {
                    options.push(cand);
                }
            }
            let out = if options.is_empty() {
                // Dead end: terminate the walk at `next`.
                walk.push((next, dir));
                break;
            } else if options.contains(&dir) && rng.gen_bool(0.6) {
                dir
            } else {
                options[rng.gen_range(0..options.len())]
            };
            walk.push((next, out));
            length_estimate += net.spacing;
            node = next;
            dir = out;
        }

        // Convert the walk to geometry.
        let stop_gap = 3.0; // stop line sits 3 m before the intersection
        let mut segments = Vec::new();
        let mut stop_lines = Vec::new();
        let (mut cx, mut cy) = net.node_position(walk[0].0);
        let mut cum = 0.0;
        for i in 1..walk.len() {
            let (node_i, out_dir) = walk[i];
            let in_dir = walk[i - 1].1;
            let (nx_pos, ny_pos) = net.node_position(node_i);
            let dist_to_node = ((nx_pos - cx).powi(2) + (ny_pos - cy).powi(2)).sqrt();
            let is_last = i == walk.len() - 1;
            let turning = !is_last && out_dir != in_dir;
            let exit_trim = if turning { turn_radius } else { 0.0 };
            let straight_len = dist_to_node - exit_trim;
            if straight_len > 1e-9 {
                segments.push(Segment::Straight {
                    x0: cx,
                    y0: cy,
                    heading: in_dir.heading(),
                    length: straight_len,
                });
                cum += straight_len;
                let (ux, uy) = in_dir.unit();
                cx += ux * straight_len;
                cy += uy * straight_len;
            }
            if !is_last {
                stop_lines.push(StopLine {
                    position: (cum - stop_gap).max(0.0),
                    node: node_i,
                    approach: in_dir,
                });
            }
            if turning {
                let h0 = in_dir.heading();
                let sign = if out_dir == in_dir.left() { 1.0 } else { -1.0 };
                // Center is perpendicular to the current heading.
                let center_angle = h0 + sign * FRAC_PI_2;
                let arc_cx = cx + turn_radius * center_angle.cos();
                let arc_cy = cy + turn_radius * center_angle.sin();
                let phi0 = center_angle + std::f64::consts::PI; // from center back to start
                let length = turn_radius * FRAC_PI_2;
                segments.push(Segment::Arc {
                    cx: arc_cx,
                    cy: arc_cy,
                    radius: turn_radius,
                    phi0,
                    sign,
                    length,
                });
                cum += length;
                // Arc ends turn_radius past the node along the new direction.
                let (ux, uy) = out_dir.unit();
                cx = nx_pos + ux * turn_radius;
                cy = ny_pos + uy * turn_radius;
            }
        }
        assert!(!segments.is_empty(), "walk produced no geometry");
        Route::from_segments(segments, stop_lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn test_net(seed: u64) -> RoadNetwork {
        RoadNetwork::grid(6, 6, 200.0, 13.9, &mut rng(seed))
    }

    #[test]
    fn straight_pose() {
        let seg = Segment::Straight {
            x0: 1.0,
            y0: 2.0,
            heading: 0.0,
            length: 10.0,
        };
        let p = seg.pose(4.0);
        assert_eq!((p.x, p.y), (5.0, 2.0));
        assert_eq!(p.curvature, 0.0);
    }

    #[test]
    fn arc_pose_left_turn_quarter() {
        // Start at origin heading east; left turn radius 10 → ends at
        // (10, 10) heading north.
        let seg = Segment::Arc {
            cx: 0.0,
            cy: 10.0,
            radius: 10.0,
            phi0: -FRAC_PI_2,
            sign: 1.0,
            length: 10.0 * FRAC_PI_2,
        };
        let start = seg.pose(0.0);
        assert!((start.x).abs() < 1e-9 && (start.y).abs() < 1e-9);
        assert!((start.heading).abs() < 1e-9);
        let end = seg.pose(seg.length());
        assert!((end.x - 10.0).abs() < 1e-9, "x={}", end.x);
        assert!((end.y - 10.0).abs() < 1e-9, "y={}", end.y);
        assert!((end.heading - FRAC_PI_2).abs() < 1e-9);
        assert!((start.curvature - 0.1).abs() < 1e-12);
    }

    #[test]
    fn route_pose_is_continuous() {
        let net = test_net(3);
        let route = Route::random(&net, 1500.0, 12.0, &mut rng(7));
        let mut prev = route.pose(0.0);
        let step = 0.5;
        let mut s = step;
        while s < route.total_length() {
            let p = route.pose(s);
            let jump = ((p.x - prev.x).powi(2) + (p.y - prev.y).powi(2)).sqrt();
            assert!(jump < 2.0 * step, "discontinuity at s={s}: jump={jump}");
            prev = p;
            s += step;
        }
    }

    #[test]
    fn route_heading_is_tangent() {
        // dPos/ds must equal (cos h, sin h) everywhere.
        let net = test_net(5);
        let route = Route::random(&net, 2000.0, 12.0, &mut rng(9));
        let eps = 0.01;
        let mut s = eps;
        while s < route.total_length() - eps {
            let p = route.pose(s);
            let ahead = route.pose(s + eps);
            let behind = route.pose(s - eps);
            let dx = (ahead.x - behind.x) / (2.0 * eps);
            let dy = (ahead.y - behind.y) / (2.0 * eps);
            assert!((dx - p.heading.cos()).abs() < 1e-2, "s={s}");
            assert!((dy - p.heading.sin()).abs() < 1e-2, "s={s}");
            s += 7.3;
        }
    }

    #[test]
    fn curvature_matches_heading_derivative() {
        let net = test_net(6);
        let route = Route::random(&net, 2000.0, 12.0, &mut rng(10));
        let eps = 0.01;
        let mut s = eps;
        while s < route.total_length() - eps {
            let k = route.curvature(s);
            let h1 = route.pose(s - eps).heading;
            let h2 = route.pose(s + eps).heading;
            let mut dh = h2 - h1;
            while dh > std::f64::consts::PI {
                dh -= 2.0 * std::f64::consts::PI;
            }
            while dh < -std::f64::consts::PI {
                dh += 2.0 * std::f64::consts::PI;
            }
            let k_num = dh / (2.0 * eps);
            // Skip segment boundaries where curvature is discontinuous.
            if (k_num - k).abs() > 0.02 {
                let near_boundary = route
                    .segments()
                    .iter()
                    .scan(0.0, |acc, seg| {
                        *acc += seg.length();
                        Some(*acc)
                    })
                    .any(|b| (b - s).abs() < 0.1);
                assert!(near_boundary, "curvature mismatch at s={s}: {k_num} vs {k}");
            }
            s += 3.1;
        }
    }

    #[test]
    fn route_meets_min_length_or_dead_ends() {
        let net = test_net(2);
        for seed in 0..20 {
            let route = Route::random(&net, 1000.0, 12.0, &mut rng(seed));
            // Either long enough, or the walk ended at a boundary, which is
            // allowed — but it must always produce usable geometry.
            assert!(route.total_length() > net.spacing / 2.0);
        }
    }

    #[test]
    fn stop_lines_are_sorted_and_in_range() {
        let net = test_net(4);
        let route = Route::random(&net, 2000.0, 12.0, &mut rng(11));
        let stops = route.stop_lines();
        for w in stops.windows(2) {
            assert!(w[0].position <= w[1].position);
        }
        for sl in stops {
            assert!(sl.position >= 0.0 && sl.position <= route.total_length());
        }
    }

    #[test]
    fn next_curve_finds_upcoming_arcs() {
        let net = test_net(8);
        // Generate until a route with a turn appears.
        let mut found = false;
        for seed in 0..50 {
            let route = Route::random(&net, 2000.0, 12.0, &mut rng(seed));
            if let Some((s_start, r)) = route.next_curve(0.0) {
                assert!(r == 12.0);
                assert!(s_start >= 0.0);
                found = true;
                break;
            }
        }
        assert!(found, "no route with a turn in 50 seeds");
    }

    #[test]
    fn deterministic_per_seed() {
        let net = test_net(1);
        let a = Route::random(&net, 1000.0, 12.0, &mut rng(42));
        let b = Route::random(&net, 1000.0, 12.0, &mut rng(42));
        assert_eq!(a, b);
    }
}
