//! The traffic simulator: spawns vehicles, integrates their motion, and
//! emits 10 Hz BSM streams.
//!
//! This is the substitute for the SUMO + Veins + OMNeT++ stack of the
//! paper's evaluation (§IV-A). VehiGAN never observes the radio layer —
//! only per-vehicle message content — so the simulator focuses on producing
//! kinematically coherent traces: IDM longitudinal control, signalized
//! stops, curve slow-downs, quarter-turns with matching heading/yaw-rate,
//! and sensor noise.

use crate::idm::IdmParams;
use crate::network::RoadNetwork;
use crate::route::Route;
use crate::sensor::SensorModel;
use crate::types::{Bsm, VehicleId, VehicleTrace, BSM_INTERVAL_S};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Simulation configuration.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SimConfig {
    /// Number of vehicles to spawn.
    pub n_vehicles: usize,
    /// Simulated horizon in seconds (paper: 3,000 s benign).
    pub duration_s: f64,
    /// RNG seed controlling everything (network, routes, noise).
    pub seed: u64,
    /// Grid columns.
    pub grid_nx: i32,
    /// Grid rows.
    pub grid_ny: i32,
    /// Block spacing in meters.
    pub spacing_m: f64,
    /// Speed limit in m/s.
    pub speed_limit: f64,
    /// Quarter-turn radius in meters.
    pub turn_radius: f64,
    /// Sensor noise model applied to every emitted BSM.
    pub sensor: SensorModel,
    /// IDM driver parameters (jittered ±15% per vehicle).
    pub idm: IdmParams,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            n_vehicles: 50,
            duration_s: 120.0,
            seed: 0,
            grid_nx: 6,
            grid_ny: 6,
            spacing_m: 200.0,
            speed_limit: 13.9,
            turn_radius: 12.0,
            sensor: SensorModel::default(),
            idm: IdmParams::default(),
        }
    }
}

impl SimConfig {
    /// A small, fast configuration for unit tests.
    pub fn quick_test() -> Self {
        SimConfig {
            n_vehicles: 5,
            duration_s: 60.0,
            ..SimConfig::default()
        }
    }
}

/// A temporary desired-speed reduction, emulating ambient traffic.
#[derive(Debug, Clone, Copy)]
struct SlowdownEvent {
    start: f64,
    end: f64,
    factor: f64,
}

/// The traffic simulator.
///
/// # Examples
///
/// ```
/// use vehigan_sim::{SimConfig, TrafficSimulator};
///
/// let traces = TrafficSimulator::new(SimConfig::quick_test()).run();
/// assert_eq!(traces.len(), 5);
/// assert!(traces.iter().all(|t| !t.is_empty()));
/// ```
#[derive(Debug)]
pub struct TrafficSimulator {
    config: SimConfig,
}

impl TrafficSimulator {
    /// Creates a simulator for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no vehicles, zero
    /// duration).
    pub fn new(config: SimConfig) -> Self {
        assert!(config.n_vehicles > 0, "need at least one vehicle");
        assert!(config.duration_s > 1.0, "duration too short");
        TrafficSimulator { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Runs the simulation, returning one trace per vehicle.
    ///
    /// Traces are deterministic for a given configuration (seed included).
    pub fn run(&self) -> Vec<VehicleTrace> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let net = RoadNetwork::grid(
            self.config.grid_nx,
            self.config.grid_ny,
            self.config.spacing_m,
            self.config.speed_limit,
            &mut rng,
        );
        (0..self.config.n_vehicles)
            .map(|i| {
                // Per-vehicle RNG stream so vehicle count does not perturb
                // other vehicles' trajectories.
                let mut vrng = StdRng::seed_from_u64(self.config.seed ^ (0x9E37_79B9 + i as u64));
                self.simulate_vehicle(VehicleId(i as u32), &net, &mut vrng)
            })
            .collect()
    }

    fn simulate_vehicle(&self, id: VehicleId, net: &RoadNetwork, rng: &mut StdRng) -> VehicleTrace {
        let cfg = &self.config;
        let spawn_time = rng.gen_range(0.0..(cfg.duration_s * 0.2).max(0.1));
        let drive_time = cfg.duration_s - spawn_time;
        let min_length = cfg.speed_limit * drive_time * 1.2 + 2.0 * cfg.spacing_m;
        let route = Route::random(net, min_length, cfg.turn_radius, rng);

        // ±15% driver heterogeneity.
        let jitter = |v: f64, rng: &mut StdRng| v * rng.gen_range(0.85..1.15);
        let idm = IdmParams {
            a_max: jitter(cfg.idm.a_max, rng),
            b_comfort: jitter(cfg.idm.b_comfort, rng),
            s0: jitter(cfg.idm.s0, rng),
            time_headway: jitter(cfg.idm.time_headway, rng),
            delta: cfg.idm.delta,
        };
        let personal_limit = jitter(cfg.speed_limit, rng);

        // Ambient-traffic slowdowns: ~1 event per 60 s of driving.
        let n_events = (drive_time / 60.0).ceil() as usize;
        let events: Vec<SlowdownEvent> = (0..n_events)
            .map(|_| {
                let start = rng.gen_range(spawn_time..cfg.duration_s);
                SlowdownEvent {
                    start,
                    end: start + rng.gen_range(5.0..20.0),
                    factor: rng.gen_range(0.3..0.8),
                }
            })
            .collect();

        let dt = BSM_INTERVAL_S;
        let mut trace = VehicleTrace::new(id);
        let mut s = 0.0_f64;
        let mut v = rng.gen_range(0.3..0.9) * personal_limit;
        let mut t = spawn_time;
        let lookahead = 120.0;

        while t < cfg.duration_s && s < route.total_length() - 1.0 {
            // Desired speed: personal limit, reduced by slowdown events and
            // upcoming/current curves.
            let mut v0 = personal_limit;
            for ev in &events {
                if t >= ev.start && t <= ev.end {
                    v0 *= ev.factor;
                }
            }
            let current_curv = route.curvature(s).abs();
            if current_curv > 1e-9 {
                v0 = v0.min(idm.curve_speed(1.0 / current_curv));
            } else if let Some((curve_start, radius)) = route.next_curve(s) {
                let dist = curve_start - s;
                if dist < lookahead {
                    v0 = v0.min(idm.approach_speed(idm.curve_speed(radius), dist));
                }
            }
            v0 = v0.max(0.5); // IDM requires positive desired speed

            // Obstacle: the next red stop line within the lookahead.
            let mut obstacle = None;
            if let Some(sl) = route.next_stop_line(s) {
                let gap = sl.position - s;
                if gap < lookahead {
                    let signal = net.signal(sl.node);
                    let red = !signal.is_green(sl.approach, t);
                    // Near a red line: treat the line as a stopped obstacle.
                    if red {
                        obstacle = Some((gap, 0.0));
                    }
                }
            }

            let mut a = idm.acceleration(v, v0, obstacle);
            a = a.clamp(-6.0, 3.0);
            // Semi-implicit Euler keeps the Δv = aΔt relation exact per step.
            let v_next = (v + a * dt).max(0.0);
            let a_eff = (v_next - v) / dt;
            let s_next = s + v_next * dt;

            let pose = route.pose(s_next);
            let truth = Bsm {
                vehicle_id: id,
                timestamp: t + dt,
                pos_x: pose.x,
                pos_y: pose.y,
                speed: v_next,
                acceleration: a_eff,
                heading: Bsm::normalize_angle(pose.heading),
                yaw_rate: pose.curvature * v_next,
            };
            trace.bsms.push(cfg.sensor.apply(&truth, rng));

            v = v_next;
            s = s_next;
            t += dt;
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noiseless_config() -> SimConfig {
        SimConfig {
            n_vehicles: 6,
            duration_s: 90.0,
            seed: 7,
            sensor: SensorModel::noiseless(),
            ..SimConfig::default()
        }
    }

    #[test]
    fn produces_one_trace_per_vehicle() {
        let traces = TrafficSimulator::new(SimConfig::quick_test()).run();
        assert_eq!(traces.len(), 5);
        for (i, t) in traces.iter().enumerate() {
            assert_eq!(t.id, VehicleId(i as u32));
            assert!(t.len() > 50, "trace {i} too short: {}", t.len());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = TrafficSimulator::new(SimConfig::quick_test()).run();
        let b = TrafficSimulator::new(SimConfig::quick_test()).run();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = TrafficSimulator::new(SimConfig::quick_test()).run();
        let b = TrafficSimulator::new(SimConfig {
            seed: 99,
            ..SimConfig::quick_test()
        })
        .run();
        assert_ne!(a, b);
    }

    #[test]
    fn timestamps_are_bsm_cadence() {
        let traces = TrafficSimulator::new(noiseless_config()).run();
        for trace in &traces {
            for w in trace.bsms.windows(2) {
                let dt = w[1].timestamp - w[0].timestamp;
                assert!((dt - BSM_INTERVAL_S).abs() < 1e-9, "dt={dt}");
            }
        }
    }

    #[test]
    fn position_integrates_speed_and_heading() {
        // Δx ≈ v·cos(θ)·Δt — the Table II relation that makes the
        // engineered features discriminative.
        let traces = TrafficSimulator::new(noiseless_config()).run();
        for trace in &traces {
            for w in trace.bsms.windows(2) {
                let (prev, next) = (&w[0], &w[1]);
                let dx = next.pos_x - prev.pos_x;
                let dy = next.pos_y - prev.pos_y;
                let expect_dx = next.speed * next.heading.cos() * BSM_INTERVAL_S;
                let expect_dy = next.speed * next.heading.sin() * BSM_INTERVAL_S;
                assert!((dx - expect_dx).abs() < 0.15, "dx={dx} expect={expect_dx}");
                assert!((dy - expect_dy).abs() < 0.15, "dy={dy} expect={expect_dy}");
            }
        }
    }

    #[test]
    fn speed_change_matches_acceleration() {
        let traces = TrafficSimulator::new(noiseless_config()).run();
        for trace in &traces {
            for w in trace.bsms.windows(2) {
                let dv = w[1].speed - w[0].speed;
                let expect = w[1].acceleration * BSM_INTERVAL_S;
                assert!((dv - expect).abs() < 1e-6, "dv={dv} expect={expect}");
            }
        }
    }

    #[test]
    fn heading_change_matches_yaw_rate() {
        let traces = TrafficSimulator::new(noiseless_config()).run();
        for trace in &traces {
            for w in trace.bsms.windows(2) {
                let dh = Bsm::normalize_angle(w[1].heading - w[0].heading);
                let expect = w[1].yaw_rate * BSM_INTERVAL_S;
                // Curvature steps at segment boundaries allow small error.
                assert!((dh - expect).abs() < 0.05, "dh={dh} expect={expect}");
            }
        }
    }

    #[test]
    fn speeds_and_accelerations_are_plausible() {
        let traces = TrafficSimulator::new(noiseless_config()).run();
        let mut saw_stop = false;
        let mut saw_cruise = false;
        for trace in &traces {
            for bsm in trace {
                assert!(bsm.speed >= 0.0 && bsm.speed < 25.0, "speed {}", bsm.speed);
                assert!(bsm.acceleration.abs() <= 6.0 + 1e-9);
                if bsm.speed < 0.3 {
                    saw_stop = true;
                }
                if bsm.speed > 10.0 {
                    saw_cruise = true;
                }
            }
        }
        assert!(saw_cruise, "no cruising observed");
        // Stops depend on signal phases; with 6 vehicles × 90 s some red
        // should be hit.
        assert!(saw_stop, "no signal stops observed");
    }

    #[test]
    fn turning_produces_nonzero_yaw() {
        let traces = TrafficSimulator::new(noiseless_config()).run();
        let any_turn = traces
            .iter()
            .flat_map(|t| &t.bsms)
            .any(|b| b.yaw_rate.abs() > 0.05);
        assert!(any_turn, "no turns observed in any trace");
    }
}
