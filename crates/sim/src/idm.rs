//! Intelligent Driver Model (IDM) longitudinal dynamics.
//!
//! Treiber's IDM produces smooth, human-plausible acceleration profiles:
//! gentle cruise control toward a desired speed plus a braking interaction
//! term against an obstacle (here: red-signal stop lines and curve entries).

/// IDM parameters for one driver.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct IdmParams {
    /// Maximum comfortable acceleration (m/s²).
    pub a_max: f64,
    /// Comfortable deceleration (m/s²).
    pub b_comfort: f64,
    /// Minimum standstill gap to an obstacle (m).
    pub s0: f64,
    /// Desired time headway (s).
    pub time_headway: f64,
    /// Acceleration exponent (4 in the original model).
    pub delta: f64,
}

impl Default for IdmParams {
    fn default() -> Self {
        IdmParams {
            a_max: 1.8,
            b_comfort: 2.5,
            s0: 2.0,
            time_headway: 1.4,
            delta: 4.0,
        }
    }
}

impl IdmParams {
    /// IDM acceleration for speed `v`, desired speed `v0`, and an optional
    /// obstacle `(gap, obstacle_speed)` ahead.
    ///
    /// With no obstacle, this is the free-road term
    /// `a_max · (1 − (v/v0)^δ)`. With an obstacle the standard interaction
    /// term is added.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `v0` is non-positive.
    pub fn acceleration(&self, v: f64, v0: f64, obstacle: Option<(f64, f64)>) -> f64 {
        debug_assert!(v0 > 0.0, "desired speed must be positive");
        let free = 1.0 - (v / v0).powf(self.delta);
        let interaction = match obstacle {
            Some((gap, v_obs)) => {
                let gap = gap.max(0.01);
                let dv = v - v_obs;
                let s_star = self.s0
                    + (v * self.time_headway
                        + v * dv / (2.0 * (self.a_max * self.b_comfort).sqrt()))
                    .max(0.0);
                (s_star / gap).powi(2)
            }
            None => 0.0,
        };
        self.a_max * (free - interaction)
    }

    /// Comfortable speed for a curve of radius `r` given a lateral
    /// acceleration budget (≈ 2.5 m/s² for passenger comfort).
    pub fn curve_speed(&self, radius: f64) -> f64 {
        (2.5 * radius).sqrt()
    }

    /// Desired-speed ceiling when a curve starts `dist` meters ahead and
    /// must be entered at `v_curve`: allows comfortable deceleration
    /// `v² = v_curve² + 2·b·dist`.
    pub fn approach_speed(&self, v_curve: f64, dist: f64) -> f64 {
        (v_curve * v_curve + 2.0 * self.b_comfort * dist.max(0.0)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_road_accelerates_below_desired() {
        let p = IdmParams::default();
        assert!(p.acceleration(5.0, 13.9, None) > 0.0);
    }

    #[test]
    fn free_road_zero_at_desired_speed() {
        let p = IdmParams::default();
        let a = p.acceleration(13.9, 13.9, None);
        assert!(a.abs() < 1e-9);
    }

    #[test]
    fn decelerates_above_desired_speed() {
        let p = IdmParams::default();
        assert!(p.acceleration(20.0, 13.9, None) < 0.0);
    }

    #[test]
    fn brakes_for_close_obstacle() {
        let p = IdmParams::default();
        let a = p.acceleration(10.0, 13.9, Some((5.0, 0.0)));
        assert!(a < -2.0, "a={a}");
    }

    #[test]
    fn far_obstacle_barely_matters() {
        let p = IdmParams::default();
        let free = p.acceleration(10.0, 13.9, None);
        let with = p.acceleration(10.0, 13.9, Some((500.0, 0.0)));
        assert!((free - with).abs() < 0.1);
    }

    #[test]
    fn standstill_at_stop_line_stays_stopped() {
        let p = IdmParams::default();
        // Stopped at the minimum gap: acceleration ≈ −a_max·(s*/gap)² + a_max ≤ 0.
        let a = p.acceleration(0.0, 13.9, Some((p.s0, 0.0)));
        assert!(a <= 1e-9);
    }

    #[test]
    fn curve_speed_scales_with_radius() {
        let p = IdmParams::default();
        assert!(p.curve_speed(12.0) < p.curve_speed(50.0));
        assert!((p.curve_speed(10.0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn approach_speed_increases_with_distance() {
        let p = IdmParams::default();
        let near = p.approach_speed(5.0, 1.0);
        let far = p.approach_speed(5.0, 100.0);
        assert!(near < far);
        assert!((p.approach_speed(5.0, 0.0) - 5.0).abs() < 1e-9);
    }
}
