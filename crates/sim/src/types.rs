//! Core V2X message and trace types.

use std::fmt;

/// The BSM transmission interval mandated by SAE J2735 (100 ms).
pub const BSM_INTERVAL_S: f64 = 0.1;

/// Short-term pseudonym identifying the sender of a BSM.
///
/// Real deployments rotate pseudonyms through the SCMS; within a simulation
/// horizon a vehicle keeps one id, matching how the VehiGAN dataset groups
/// messages per vehicle.
#[derive(
    Debug,
    Clone,
    Copy,
    Default,
    PartialEq,
    Eq,
    Hash,
    PartialOrd,
    Ord,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct VehicleId(pub u32);

impl fmt::Display for VehicleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "veh-{}", self.0)
    }
}

/// A Basic Safety Message: the SAE J2735 core fields VehiGAN consumes.
///
/// Units: meters, seconds, radians. `heading` is measured
/// counter-clockwise from the +X axis and normalized to `(-π, π]`;
/// `yaw_rate` is its time derivative.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Bsm {
    /// Sender pseudonym.
    pub vehicle_id: VehicleId,
    /// Transmission time in seconds since simulation start.
    pub timestamp: f64,
    /// East coordinate in meters.
    pub pos_x: f64,
    /// North coordinate in meters.
    pub pos_y: f64,
    /// Scalar speed in m/s (non-negative for benign traffic).
    pub speed: f64,
    /// Scalar longitudinal acceleration in m/s² (signed).
    pub acceleration: f64,
    /// Heading in radians, normalized to `(-π, π]`.
    pub heading: f64,
    /// Yaw rate in rad/s.
    pub yaw_rate: f64,
}

impl Bsm {
    /// Whether every payload field (timestamp included) is a finite
    /// number. Field-equipment BSMs are not guaranteed well-formed, so
    /// ingest paths check this before any feature arithmetic — a single
    /// NaN survives subtraction, scaling, and clamping all the way into
    /// a window tensor.
    pub fn all_finite(&self) -> bool {
        self.timestamp.is_finite()
            && self.pos_x.is_finite()
            && self.pos_y.is_finite()
            && self.speed.is_finite()
            && self.acceleration.is_finite()
            && self.heading.is_finite()
            && self.yaw_rate.is_finite()
    }

    /// Normalizes an angle to `(-π, π]`.
    pub fn normalize_angle(theta: f64) -> f64 {
        let mut t = theta % (2.0 * std::f64::consts::PI);
        if t > std::f64::consts::PI {
            t -= 2.0 * std::f64::consts::PI;
        } else if t <= -std::f64::consts::PI {
            t += 2.0 * std::f64::consts::PI;
        }
        t
    }
}

/// The time-ordered BSM stream of a single vehicle.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct VehicleTrace {
    /// The sender all messages belong to.
    pub id: VehicleId,
    /// Messages in strictly increasing timestamp order.
    pub bsms: Vec<Bsm>,
}

impl VehicleTrace {
    /// Creates an empty trace for `id`.
    pub fn new(id: VehicleId) -> Self {
        VehicleTrace {
            id,
            bsms: Vec::new(),
        }
    }

    /// Number of messages.
    pub fn len(&self) -> usize {
        self.bsms.len()
    }

    /// Whether the trace has no messages.
    pub fn is_empty(&self) -> bool {
        self.bsms.is_empty()
    }

    /// Duration covered by the trace in seconds (0 for < 2 messages).
    pub fn duration(&self) -> f64 {
        match (self.bsms.first(), self.bsms.last()) {
            (Some(a), Some(b)) => b.timestamp - a.timestamp,
            _ => 0.0,
        }
    }

    /// Iterates over the messages.
    pub fn iter(&self) -> std::slice::Iter<'_, Bsm> {
        self.bsms.iter()
    }
}

impl<'a> IntoIterator for &'a VehicleTrace {
    type Item = &'a Bsm;
    type IntoIter = std::slice::Iter<'a, Bsm>;
    fn into_iter(self) -> Self::IntoIter {
        self.bsms.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn normalize_angle_range() {
        for theta in [-7.0, -PI, -0.5, 0.0, 0.5, PI, 7.0, 100.0] {
            let n = Bsm::normalize_angle(theta);
            assert!(n > -PI - 1e-12 && n <= PI + 1e-12, "theta={theta} → {n}");
        }
    }

    #[test]
    fn normalize_angle_fixed_points() {
        assert_eq!(Bsm::normalize_angle(0.0), 0.0);
        assert!((Bsm::normalize_angle(2.0 * PI)).abs() < 1e-12);
        assert!((Bsm::normalize_angle(3.0 * PI) - PI).abs() < 1e-12);
    }

    #[test]
    fn trace_duration() {
        let mut t = VehicleTrace::new(VehicleId(1));
        assert_eq!(t.duration(), 0.0);
        let base = Bsm {
            vehicle_id: VehicleId(1),
            timestamp: 0.0,
            pos_x: 0.0,
            pos_y: 0.0,
            speed: 0.0,
            acceleration: 0.0,
            heading: 0.0,
            yaw_rate: 0.0,
        };
        t.bsms.push(base);
        t.bsms.push(Bsm {
            timestamp: 2.5,
            ..base
        });
        assert_eq!(t.duration(), 2.5);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn vehicle_id_display() {
        assert_eq!(VehicleId(42).to_string(), "veh-42");
    }
}
