//! Sensor noise models.
//!
//! Real BSMs carry GNSS/IMU/wheel-odometry readings, each with its own noise
//! floor. The paper's VASP traces inherit these from the simulator; here the
//! same effect is produced by additive Gaussian noise per field, which the
//! adversarial-robustness experiments also rely on (FGSM perturbations are
//! designed to hide inside this noise).

use crate::types::Bsm;
use rand::rngs::StdRng;
use rand::Rng;

/// Per-field Gaussian noise standard deviations.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SensorModel {
    /// GNSS position noise per axis (m).
    pub pos_std: f64,
    /// Wheel-speed noise (m/s).
    pub speed_std: f64,
    /// Accelerometer noise (m/s²).
    pub accel_std: f64,
    /// Compass/GNSS-course heading noise (rad).
    pub heading_std: f64,
    /// Gyroscope yaw-rate noise (rad/s).
    pub yaw_rate_std: f64,
}

impl Default for SensorModel {
    /// Automotive-grade defaults: ~0.5 m GPS, 0.1 m/s wheel speed,
    /// 0.1 m/s² accelerometer, ~0.6° heading, 0.005 rad/s gyro.
    fn default() -> Self {
        SensorModel {
            pos_std: 0.5,
            speed_std: 0.1,
            accel_std: 0.1,
            heading_std: 0.01,
            yaw_rate_std: 0.005,
        }
    }
}

impl SensorModel {
    /// A noiseless sensor (useful for physics tests).
    pub fn noiseless() -> Self {
        SensorModel {
            pos_std: 0.0,
            speed_std: 0.0,
            accel_std: 0.0,
            heading_std: 0.0,
            yaw_rate_std: 0.0,
        }
    }

    /// Applies noise to a ground-truth BSM.
    pub fn apply(&self, bsm: &Bsm, rng: &mut StdRng) -> Bsm {
        let mut noisy = *bsm;
        noisy.pos_x += gauss(rng) * self.pos_std;
        noisy.pos_y += gauss(rng) * self.pos_std;
        noisy.speed = (noisy.speed + gauss(rng) * self.speed_std).max(0.0);
        noisy.acceleration += gauss(rng) * self.accel_std;
        noisy.heading = Bsm::normalize_angle(noisy.heading + gauss(rng) * self.heading_std);
        noisy.yaw_rate += gauss(rng) * self.yaw_rate_std;
        noisy
    }
}

/// Standard normal sample via Box–Muller.
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::VehicleId;
    use rand::SeedableRng;

    fn base_bsm() -> Bsm {
        Bsm {
            vehicle_id: VehicleId(0),
            timestamp: 1.0,
            pos_x: 100.0,
            pos_y: 200.0,
            speed: 10.0,
            acceleration: 0.5,
            heading: 0.3,
            yaw_rate: 0.01,
        }
    }

    #[test]
    fn noiseless_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let bsm = base_bsm();
        let out = SensorModel::noiseless().apply(&bsm, &mut rng);
        assert_eq!(out, bsm);
    }

    #[test]
    fn noise_statistics_match_model() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = SensorModel::default();
        let bsm = base_bsm();
        let n = 5000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let noisy = model.apply(&bsm, &mut rng);
            let e = noisy.pos_x - bsm.pos_x;
            sum += e;
            sum_sq += e * e;
        }
        let mean = sum / n as f64;
        let std = (sum_sq / n as f64 - mean * mean).sqrt();
        assert!(mean.abs() < 0.05, "bias {mean}");
        assert!((std - model.pos_std).abs() < 0.05, "std {std}");
    }

    #[test]
    fn speed_never_negative() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = SensorModel {
            speed_std: 5.0,
            ..SensorModel::default()
        };
        let mut bsm = base_bsm();
        bsm.speed = 0.1;
        for _ in 0..1000 {
            assert!(model.apply(&bsm, &mut rng).speed >= 0.0);
        }
    }

    #[test]
    fn heading_stays_normalized() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = SensorModel {
            heading_std: 1.0,
            ..SensorModel::default()
        };
        let mut bsm = base_bsm();
        bsm.heading = std::f64::consts::PI - 0.01;
        for _ in 0..1000 {
            let h = model.apply(&bsm, &mut rng).heading;
            assert!(h > -std::f64::consts::PI - 1e-9 && h <= std::f64::consts::PI + 1e-9);
        }
    }
}
