//! The misbehavior authority (MA): ingests MBRs, corroborates them across
//! independent reporters, and revokes credentials (§I, §II).
//!
//! A single malicious or faulty reporter must not be able to evict an
//! honest vehicle, so conviction requires corroboration: at least
//! `min_reporters` **distinct** reporters and `min_reports` worth of
//! decayed report weight inside a sliding time window (the bounded
//! evidence accumulator in [`crate::evidence`]).
//!
//! # Fleet-scale design
//!
//! Evidence lives in `n_shards` hash-partitioned shards behind per-shard
//! locks, mirroring `vehigan-serve`'s data plane. The shard key is the
//! suspect's resolved *long-term* identity when a linkage manager is
//! attached (so every pseudonym of one vehicle — and therefore every
//! sibling revocation a conviction triggers — stays inside one shard),
//! falling back to the pseudonym id otherwise.
//!
//! [`MisbehaviorAuthority::ingest_batch`] fans a batch out across shards
//! and is **bitwise-identical to serial ingest** of the same slice:
//!
//! 1. Reports are routed to shards preserving arrival order, so each
//!    suspect group sees exactly the per-group subsequence serial ingest
//!    would feed it.
//! 2. Workers read the global CRL *frozen* at batch start plus a
//!    shard-local map of revocations decided earlier in this batch.
//!    Because a conviction only ever revokes pseudonyms in its own shard
//!    (the linkage-aware shard key), the local map is complete: a worker
//!    observes precisely the revocations serial ingest would have
//!    applied before each of its reports.
//! 3. Per-suspect evidence updates are plain `f64` arithmetic driven
//!    only by that suspect's report subsequence — no cross-suspect or
//!    cross-shard state — so shard evidence ends bit-identical.
//! 4. Convictions are merged into the CRL serially in (shard, arrival)
//!    order; the resulting entry *set* equals serial ingest's (op order
//!    may differ, which is why [`CertificateRevocationList`] equality
//!    compares entries, not journal order).

use crate::crl::{CertificateRevocationList, RevocationRecord};
use crate::evidence::{Observation, SuspectEvidence};
use crate::pseudonym::{LongTermId, PseudonymManager};
use crate::report::{InvalidMbrError, Mbr};
use parking_lot::Mutex;
use std::collections::HashMap;
use vehigan_sim::VehicleId;

/// Conviction policy of the authority.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AuthorityPolicy {
    /// Distinct reporters required for conviction.
    pub min_reporters: usize,
    /// Total decayed report weight required for conviction.
    pub min_reports: usize,
    /// Corroboration window in seconds (reports older than this are
    /// dropped from consideration; the evidence decay half-life is
    /// `window_s / 2`).
    pub window_s: f64,
    /// Expected evidence length (`w · f`) for structural validation.
    pub evidence_len: usize,
    /// CRL entry validity (`None` = permanent).
    pub revocation_validity_s: Option<f64>,
}

impl Default for AuthorityPolicy {
    fn default() -> Self {
        AuthorityPolicy {
            min_reporters: 2,
            min_reports: 3,
            window_s: 60.0,
            evidence_len: 120,
            revocation_validity_s: None,
        }
    }
}

/// Outcome of ingesting one report.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestOutcome {
    /// Report rejected by validation.
    Rejected(InvalidMbrError),
    /// Report about a permanently revoked vehicle (no further action).
    AlreadyRevoked,
    /// Report timestamp a full window older than the suspect's
    /// high-water clock: replayed/ancient evidence, discarded.
    StaleDiscarded,
    /// Report accepted; suspect not yet convicted.
    Pending {
        /// Distinct reporters accumulated inside the window.
        reporters: usize,
        /// Decayed report weight (rounded) inside the window.
        reports: usize,
    },
    /// The report completed the corroboration requirement: revoked.
    Revoked(RevocationRecord),
    /// Corroboration re-met while a time-limited revocation was still
    /// active: the revocation is refreshed instead of lapsing.
    Extended(RevocationRecord),
}

/// One conviction (or extension) decided during ingest.
#[derive(Debug, Clone, PartialEq)]
pub struct Conviction {
    /// The accused pseudonym that crossed the corroboration bar.
    pub suspect: VehicleId,
    /// The resolved long-term identity, when a linkage is attached.
    pub long_term: Option<LongTermId>,
    /// Every pseudonym revoked by this conviction (all issued pseudonyms
    /// of `long_term`, or just `suspect` without linkage).
    pub revoked: Vec<VehicleId>,
    /// The revocation record placed on the CRL.
    pub record: RevocationRecord,
    /// Whether this refreshed an already-active time-limited revocation.
    pub extension: bool,
}

/// Summary of one `ingest_batch` call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchReport {
    /// Reports handed to the batch.
    pub received: usize,
    /// Reports absorbed into evidence.
    pub accepted: usize,
    /// Reports failing structural validation.
    pub rejected: usize,
    /// Off-window replays discarded without touching state.
    pub stale_discarded: usize,
    /// Reports about permanently revoked vehicles.
    pub already_revoked: usize,
    /// Convictions and extensions decided, in (shard, arrival) order.
    pub convictions: Vec<Conviction>,
}

/// Lifetime report counters of the authority.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct AuthorityStats {
    /// Reports absorbed into evidence.
    pub accepted: u64,
    /// Reports failing structural validation.
    pub rejected: u64,
    /// Off-window replays discarded.
    pub stale_discarded: u64,
    /// Reports about permanently revoked vehicles.
    pub already_revoked: u64,
    /// Convictions (including extensions).
    pub convictions: u64,
    /// Extensions of active time-limited revocations.
    pub extensions: u64,
}

/// Evidence partition: suspects hashed here by group key.
#[derive(Debug, Default)]
struct Shard {
    evidence: HashMap<VehicleId, SuspectEvidence>,
}

/// Batch-local worker state, merged serially after the fan-out.
#[derive(Debug, Default)]
struct BatchScratch {
    /// Revocations decided earlier in this batch (this shard only).
    pending_rev: HashMap<VehicleId, RevocationRecord>,
    convictions: Vec<Conviction>,
    counters: AuthorityStats,
}

/// Below this batch size the fan-out runs on the calling thread —
/// thread spawn overhead would dominate.
const PARALLEL_THRESHOLD: usize = 4096;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// The misbehavior authority.
///
/// # Examples
///
/// ```
/// use vehigan_mbr::{AuthorityPolicy, IngestOutcome, Mbr, MisbehaviorAuthority};
/// use vehigan_sim::VehicleId;
///
/// let mut ma = MisbehaviorAuthority::new(AuthorityPolicy {
///     min_reporters: 2, min_reports: 2, evidence_len: 4, ..Default::default()
/// });
/// let report = |reporter, t| Mbr {
///     reporter: VehicleId(reporter), suspect: VehicleId(9), timestamp: t,
///     score: 1.0, threshold: 0.5, evidence: vec![0.0; 4],
/// };
/// assert!(matches!(ma.ingest(report(1, 0.0)), IngestOutcome::Pending { .. }));
/// assert!(matches!(ma.ingest(report(2, 1.0)), IngestOutcome::Revoked(_)));
/// assert!(ma.crl().is_revoked(VehicleId(9), 1.0));
/// ```
#[derive(Debug)]
pub struct MisbehaviorAuthority {
    policy: AuthorityPolicy,
    shards: Vec<Mutex<Shard>>,
    crl: CertificateRevocationList,
    scms: Option<PseudonymManager>,
    /// Long-term identities with a standing conviction (drives
    /// auto-revocation of freshly issued pseudonyms).
    convicted_lt: HashMap<LongTermId, RevocationRecord>,
    stats: AuthorityStats,
}

impl MisbehaviorAuthority {
    /// Creates an authority with the given policy and a default shard
    /// count of 8.
    ///
    /// # Panics
    ///
    /// Panics if the policy is degenerate (zero reporters/reports or a
    /// non-positive window).
    pub fn new(policy: AuthorityPolicy) -> Self {
        Self::with_shards(policy, 8)
    }

    /// Creates an authority with an explicit evidence shard count.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate policy or `n_shards == 0`.
    pub fn with_shards(policy: AuthorityPolicy, n_shards: usize) -> Self {
        assert!(policy.min_reporters >= 1, "need at least one reporter");
        assert!(
            policy.min_reports >= policy.min_reporters,
            "min_reports must be >= min_reporters"
        );
        assert!(policy.window_s > 0.0, "window must be positive");
        assert!(n_shards >= 1, "need at least one shard");
        MisbehaviorAuthority {
            crl: CertificateRevocationList::new(policy.revocation_validity_s),
            policy,
            shards: (0..n_shards)
                .map(|_| Mutex::new(Shard::default()))
                .collect(),
            scms: None,
            convicted_lt: HashMap::new(),
            stats: AuthorityStats::default(),
        }
    }

    /// Attaches the SCMS linkage manager: convictions now revoke *every*
    /// issued pseudonym of the resolved long-term identity, and
    /// [`issue_pseudonym`](Self::issue_pseudonym) auto-revokes rotations
    /// of convicted vehicles.
    pub fn with_linkage(mut self, scms: PseudonymManager) -> Self {
        self.scms = Some(scms);
        self
    }

    /// The active policy.
    pub fn policy(&self) -> &AuthorityPolicy {
        &self.policy
    }

    /// The authority's CRL.
    pub fn crl(&self) -> &CertificateRevocationList {
        &self.crl
    }

    /// The attached linkage manager, if any.
    pub fn scms(&self) -> Option<&PseudonymManager> {
        self.scms.as_ref()
    }

    /// Lifetime report counters.
    pub fn stats(&self) -> AuthorityStats {
        self.stats
    }

    /// Evidence shard count.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Shard routing key: the resolved long-term identity when linkage
    /// is attached (tagged to avoid colliding with raw pseudonym ids),
    /// else the pseudonym itself. Keeping a vehicle's pseudonyms on one
    /// shard is what makes batch-local revocation state complete.
    fn group_key(&self, suspect: VehicleId) -> u64 {
        match self.scms.as_ref().and_then(|s| s.resolve(suspect)) {
            Some(lt) => (1u64 << 32) | lt.0 as u64,
            None => suspect.0 as u64,
        }
    }

    fn shard_index(&self, suspect: VehicleId) -> usize {
        let key = self.group_key(suspect);
        ((key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize) % self.shards.len()
    }

    /// Folds a worker's decisions into the global CRL and counters.
    fn merge_scratch(&mut self, scratch: BatchScratch) -> Vec<Conviction> {
        for conv in &scratch.convictions {
            for sib in &conv.revoked {
                self.crl.revoke(*sib, conv.record.clone());
            }
            if let Some(lt) = conv.long_term {
                self.convicted_lt.insert(lt, conv.record.clone());
            }
        }
        let c = scratch.counters;
        self.stats.accepted += c.accepted;
        self.stats.rejected += c.rejected;
        self.stats.stale_discarded += c.stale_discarded;
        self.stats.already_revoked += c.already_revoked;
        self.stats.convictions += c.convictions;
        self.stats.extensions += c.extensions;
        scratch.convictions
    }

    /// Ingests one report, possibly convicting the suspect.
    pub fn ingest(&mut self, report: Mbr) -> IngestOutcome {
        self.ingest_ref(&report)
    }

    /// Ingests one report by reference (the hot path: evidence is only
    /// inspected, never retained).
    pub fn ingest_ref(&mut self, report: &Mbr) -> IngestOutcome {
        let idx = self.shard_index(report.suspect);
        let mut scratch = BatchScratch::default();
        let out = {
            let mut shard = self.shards[idx].lock();
            ingest_one(
                &self.policy,
                &self.crl,
                self.scms.as_ref(),
                &mut shard.evidence,
                &mut scratch,
                report,
            )
        };
        self.merge_scratch(scratch);
        out
    }

    /// Ingests a batch of reports, fanning out across evidence shards
    /// (parallel above [`PARALLEL_THRESHOLD`] reports) and merging
    /// deterministically. Final authority state is bitwise-identical to
    /// calling [`ingest`](Self::ingest) on each report in slice order
    /// (see module docs for the argument).
    pub fn ingest_batch(&mut self, reports: &[Mbr]) -> BatchReport {
        let n = self.shards.len();
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, r) in reports.iter().enumerate() {
            buckets[self.shard_index(r.suspect)].push(i);
        }
        let run_shard = |shard_idx: usize, idxs: &[usize]| -> BatchScratch {
            let mut scratch = BatchScratch::default();
            let mut shard = self.shards[shard_idx].lock();
            for &i in idxs {
                let _ = ingest_one(
                    &self.policy,
                    &self.crl,
                    self.scms.as_ref(),
                    &mut shard.evidence,
                    &mut scratch,
                    &reports[i],
                );
            }
            scratch
        };
        let scratches: Vec<BatchScratch> = if n == 1 || reports.len() < PARALLEL_THRESHOLD {
            buckets
                .iter()
                .enumerate()
                .map(|(s, idxs)| run_shard(s, idxs))
                .collect()
        } else {
            let run_shard = &run_shard;
            crossbeam::thread::scope(|sc| {
                let handles: Vec<_> = buckets
                    .iter()
                    .enumerate()
                    .map(|(s, idxs)| sc.spawn(move |_| run_shard(s, idxs)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("authority shard worker panicked"))
                    .collect()
            })
            .expect("authority batch scope panicked")
        };
        let mut out = BatchReport {
            received: reports.len(),
            ..BatchReport::default()
        };
        for scratch in scratches {
            let c = scratch.counters;
            out.accepted += c.accepted as usize;
            out.rejected += c.rejected as usize;
            out.stale_discarded += c.stale_discarded as usize;
            out.already_revoked += c.already_revoked as usize;
            out.convictions.extend(self.merge_scratch(scratch));
        }
        out
    }

    /// Issues a fresh pseudonym through the attached linkage manager,
    /// auto-revoking it when the vehicle has a standing conviction (a
    /// convicted vehicle must not rejoin the network by rotating).
    ///
    /// # Panics
    ///
    /// Panics when no linkage manager is attached.
    pub fn issue_pseudonym(&mut self, vehicle: LongTermId, now: f64) -> VehicleId {
        let scms = self
            .scms
            .as_mut()
            .expect("issue_pseudonym requires with_linkage");
        let pseudonym = scms.issue(vehicle);
        if let Some(rec) = self.convicted_lt.get(&vehicle) {
            let active = match self.policy.revocation_validity_s {
                Some(v) => now - rec.revoked_at <= v,
                None => true,
            };
            if active {
                self.crl.revoke(pseudonym, rec.clone());
            }
        }
        pseudonym
    }

    /// Number of suspects with open (unconvicted) evidence.
    pub fn pending_suspects(&self) -> usize {
        self.shards.iter().map(|s| s.lock().evidence.len()).sum()
    }

    /// Order-independent FNV digest of the exact per-suspect evidence
    /// bits, for the serial ≡ sharded equivalence tests.
    #[doc(hidden)]
    pub fn evidence_fingerprint(&self) -> u64 {
        let mut h = FNV_OFFSET;
        let fold = |h: &mut u64, bits: u64| {
            for b in bits.to_le_bytes() {
                *h ^= b as u64;
                *h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for shard in &self.shards {
            let shard = shard.lock();
            let mut items: Vec<(u32, u64)> = shard
                .evidence
                .iter()
                .map(|(v, e)| (v.0, e.digest(FNV_OFFSET)))
                .collect();
            items.sort_unstable();
            for (v, d) in items {
                fold(&mut h, v as u64);
                fold(&mut h, d);
            }
        }
        h
    }
}

/// The single-report state machine both serial ingest and the batch
/// workers run — sharing it is what makes their equivalence structural
/// rather than incidental.
fn ingest_one(
    policy: &AuthorityPolicy,
    crl: &CertificateRevocationList,
    scms: Option<&PseudonymManager>,
    evidence: &mut HashMap<VehicleId, SuspectEvidence>,
    scratch: &mut BatchScratch,
    report: &Mbr,
) -> IngestOutcome {
    if let Err(e) = report.validate(policy.evidence_len) {
        scratch.counters.rejected += 1;
        return IngestOutcome::Rejected(e);
    }
    let suspect = report.suspect;
    let t = report.timestamp;
    // Revocation status: the frozen global CRL, overridden by anything
    // this batch already decided for the suspect's shard.
    let revoked_now = match scratch.pending_rev.get(&suspect) {
        Some(rec) => match policy.revocation_validity_s {
            Some(v) => t - rec.revoked_at <= v,
            None => true,
        },
        None => crl.is_revoked(suspect, t),
    };
    if revoked_now && policy.revocation_validity_s.is_none() {
        // Permanent revocation: nothing left to decide.
        scratch.counters.already_revoked += 1;
        return IngestOutcome::AlreadyRevoked;
    }
    // Time-limited revocations keep accumulating evidence so continuous
    // misbehavior extends them instead of letting them lapse.
    let entry = evidence.entry(suspect).or_default();
    match entry.observe(report.reporter, t, report.margin() as f64, policy.window_s) {
        Observation::Stale => {
            scratch.counters.stale_discarded += 1;
            return IngestOutcome::StaleDiscarded;
        }
        Observation::Absorbed => {}
    }
    scratch.counters.accepted += 1;
    let reporters = entry.reporter_count(policy.window_s);
    let reports = entry.report_count();
    if reporters < policy.min_reporters || reports < policy.min_reports {
        return IngestOutcome::Pending { reporters, reports };
    }
    let record = RevocationRecord {
        revoked_at: entry.high_water,
        reporter_count: reporters,
        report_count: reports,
        mean_margin: entry.mean_margin(),
    };
    let long_term = scms.and_then(|s| s.resolve(suspect));
    let mut revoked = match (long_term, scms) {
        (Some(lt), Some(s)) => s.pseudonyms_of(lt),
        _ => vec![suspect],
    };
    if !revoked.contains(&suspect) {
        revoked.push(suspect);
    }
    for sib in &revoked {
        scratch.pending_rev.insert(*sib, record.clone());
        evidence.remove(sib);
    }
    scratch.counters.convictions += 1;
    if revoked_now {
        scratch.counters.extensions += 1;
    }
    scratch.convictions.push(Conviction {
        suspect,
        long_term,
        revoked,
        record: record.clone(),
        extension: revoked_now,
    });
    if revoked_now {
        IngestOutcome::Extended(record)
    } else {
        IngestOutcome::Revoked(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> AuthorityPolicy {
        AuthorityPolicy {
            min_reporters: 2,
            min_reports: 3,
            window_s: 60.0,
            evidence_len: 4,
            revocation_validity_s: None,
        }
    }

    fn report(reporter: u32, suspect: u32, t: f64) -> Mbr {
        Mbr {
            reporter: VehicleId(reporter),
            suspect: VehicleId(suspect),
            timestamp: t,
            score: 1.0,
            threshold: 0.5,
            evidence: vec![0.0; 4],
        }
    }

    #[test]
    fn single_reporter_cannot_convict() {
        let mut ma = MisbehaviorAuthority::new(policy());
        for t in 0..10 {
            let out = ma.ingest(report(1, 9, t as f64));
            assert!(
                matches!(out, IngestOutcome::Pending { reporters: 1, .. }),
                "one reporter alone convicted at t={t}: {out:?}"
            );
        }
        assert!(!ma.crl().is_revoked(VehicleId(9), 10.0));
    }

    #[test]
    fn corroborated_reports_convict() {
        let mut ma = MisbehaviorAuthority::new(policy());
        assert!(matches!(
            ma.ingest(report(1, 9, 0.0)),
            IngestOutcome::Pending { .. }
        ));
        assert!(matches!(
            ma.ingest(report(2, 9, 1.0)),
            IngestOutcome::Pending { .. }
        ));
        let out = ma.ingest(report(1, 9, 2.0));
        match out {
            IngestOutcome::Revoked(rec) => {
                assert_eq!(rec.reporter_count, 2);
                assert_eq!(rec.report_count, 3);
                assert!((rec.mean_margin - 0.5).abs() < 1e-6);
            }
            other => panic!("expected revocation, got {other:?}"),
        }
        assert!(ma.crl().is_revoked(VehicleId(9), 2.0));
        assert_eq!(ma.pending_suspects(), 0);
    }

    #[test]
    fn stale_reports_age_out_of_the_window() {
        let mut ma = MisbehaviorAuthority::new(policy());
        let _ = ma.ingest(report(1, 9, 0.0));
        let _ = ma.ingest(report(2, 9, 1.0));
        // Third report arrives far outside the window: the first two no
        // longer corroborate.
        let out = ma.ingest(report(3, 9, 1000.0));
        assert!(
            matches!(
                out,
                IngestOutcome::Pending {
                    reporters: 1,
                    reports: 1
                }
            ),
            "{out:?}"
        );
    }

    #[test]
    fn invalid_reports_are_rejected_and_counted() {
        let mut ma = MisbehaviorAuthority::new(policy());
        let mut bad = report(1, 1, 0.0); // self-report
        bad.suspect = bad.reporter;
        assert!(matches!(ma.ingest(bad), IngestOutcome::Rejected(_)));
        assert_eq!(ma.stats().accepted, 0);
        assert_eq!(ma.stats().rejected, 1);
    }

    #[test]
    fn reports_after_revocation_are_noops() {
        let mut ma = MisbehaviorAuthority::new(policy());
        let _ = ma.ingest(report(1, 9, 0.0));
        let _ = ma.ingest(report(2, 9, 1.0));
        let _ = ma.ingest(report(3, 9, 2.0));
        assert!(ma.crl().is_revoked(VehicleId(9), 2.0));
        assert!(matches!(
            ma.ingest(report(4, 9, 3.0)),
            IngestOutcome::AlreadyRevoked
        ));
    }

    #[test]
    fn independent_suspects_tracked_separately() {
        let mut ma = MisbehaviorAuthority::new(policy());
        let _ = ma.ingest(report(1, 8, 0.0));
        let _ = ma.ingest(report(1, 9, 0.0));
        assert_eq!(ma.pending_suspects(), 2);
    }

    #[test]
    #[should_panic(expected = "min_reports must be")]
    fn degenerate_policy_rejected() {
        let _ = MisbehaviorAuthority::new(AuthorityPolicy {
            min_reporters: 3,
            min_reports: 1,
            ..policy()
        });
    }

    #[test]
    fn batch_matches_serial_bit_for_bit() {
        let stream: Vec<Mbr> = (0..200)
            .map(|i| report(i % 7, 100 + (i % 11), i as f64 * 0.3))
            .collect();
        let mut serial = MisbehaviorAuthority::with_shards(policy(), 4);
        for r in &stream {
            let _ = serial.ingest_ref(r);
        }
        let mut batch = MisbehaviorAuthority::with_shards(policy(), 4);
        let summary = batch.ingest_batch(&stream);
        assert_eq!(serial.evidence_fingerprint(), batch.evidence_fingerprint());
        assert_eq!(serial.crl(), batch.crl());
        assert_eq!(summary.received, 200);
        assert_eq!(
            summary.accepted + summary.rejected + summary.stale_discarded + summary.already_revoked,
            200
        );
    }

    #[test]
    fn batch_convictions_reported_once_per_suspect() {
        let mut ma = MisbehaviorAuthority::new(policy());
        let stream: Vec<Mbr> = (0..3).map(|i| report(i + 1, 9, i as f64)).collect();
        let summary = ma.ingest_batch(&stream);
        assert_eq!(summary.convictions.len(), 1);
        assert_eq!(summary.convictions[0].suspect, VehicleId(9));
        assert!(!summary.convictions[0].extension);
    }
}
