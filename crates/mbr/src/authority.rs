//! The misbehavior authority (MA): ingests MBRs, corroborates them across
//! independent reporters, and revokes credentials (§I, §II).
//!
//! A single malicious or faulty reporter must not be able to evict an
//! honest vehicle, so conviction requires corroboration: at least
//! `min_reporters` **distinct** reporters and `min_reports` total valid
//! reports inside a sliding time window.

use crate::crl::{CertificateRevocationList, RevocationRecord};
use crate::report::{InvalidMbrError, Mbr};
use std::collections::{HashMap, HashSet, VecDeque};
use vehigan_sim::VehicleId;

/// Conviction policy of the authority.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AuthorityPolicy {
    /// Distinct reporters required for conviction.
    pub min_reporters: usize,
    /// Total valid reports required for conviction.
    pub min_reports: usize,
    /// Corroboration window in seconds (reports older than this are
    /// dropped from consideration).
    pub window_s: f64,
    /// Expected evidence length (`w · f`) for structural validation.
    pub evidence_len: usize,
    /// CRL entry validity (`None` = permanent).
    pub revocation_validity_s: Option<f64>,
}

impl Default for AuthorityPolicy {
    fn default() -> Self {
        AuthorityPolicy {
            min_reporters: 2,
            min_reports: 3,
            window_s: 60.0,
            evidence_len: 120,
            revocation_validity_s: None,
        }
    }
}

/// Outcome of ingesting one report.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestOutcome {
    /// Report rejected by validation.
    Rejected(InvalidMbrError),
    /// Report about an already-revoked vehicle (no further action).
    AlreadyRevoked,
    /// Report accepted; suspect not yet convicted.
    Pending {
        /// Distinct reporters accumulated inside the window.
        reporters: usize,
        /// Valid reports accumulated inside the window.
        reports: usize,
    },
    /// The report completed the corroboration requirement: revoked.
    Revoked(RevocationRecord),
}

/// The misbehavior authority.
///
/// # Examples
///
/// ```
/// use vehigan_mbr::{AuthorityPolicy, IngestOutcome, Mbr, MisbehaviorAuthority};
/// use vehigan_sim::VehicleId;
///
/// let mut ma = MisbehaviorAuthority::new(AuthorityPolicy {
///     min_reporters: 2, min_reports: 2, evidence_len: 4, ..Default::default()
/// });
/// let report = |reporter, t| Mbr {
///     reporter: VehicleId(reporter), suspect: VehicleId(9), timestamp: t,
///     score: 1.0, threshold: 0.5, evidence: vec![0.0; 4],
/// };
/// assert!(matches!(ma.ingest(report(1, 0.0)), IngestOutcome::Pending { .. }));
/// assert!(matches!(ma.ingest(report(2, 1.0)), IngestOutcome::Revoked(_)));
/// assert!(ma.crl().is_revoked(VehicleId(9), 1.0));
/// ```
#[derive(Debug)]
pub struct MisbehaviorAuthority {
    policy: AuthorityPolicy,
    pending: HashMap<VehicleId, VecDeque<Mbr>>,
    crl: CertificateRevocationList,
    rejected: usize,
    accepted: usize,
}

impl MisbehaviorAuthority {
    /// Creates an authority with the given policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy is degenerate (zero reporters/reports or a
    /// non-positive window).
    pub fn new(policy: AuthorityPolicy) -> Self {
        assert!(policy.min_reporters >= 1, "need at least one reporter");
        assert!(
            policy.min_reports >= policy.min_reporters,
            "min_reports must be >= min_reporters"
        );
        assert!(policy.window_s > 0.0, "window must be positive");
        MisbehaviorAuthority {
            crl: CertificateRevocationList::new(policy.revocation_validity_s),
            policy,
            pending: HashMap::new(),
            rejected: 0,
            accepted: 0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> &AuthorityPolicy {
        &self.policy
    }

    /// The authority's CRL.
    pub fn crl(&self) -> &CertificateRevocationList {
        &self.crl
    }

    /// `(accepted, rejected)` report counters.
    pub fn stats(&self) -> (usize, usize) {
        (self.accepted, self.rejected)
    }

    /// Ingests one report, possibly convicting the suspect.
    pub fn ingest(&mut self, report: Mbr) -> IngestOutcome {
        if let Err(e) = report.validate(self.policy.evidence_len) {
            self.rejected += 1;
            return IngestOutcome::Rejected(e);
        }
        if self.crl.is_revoked(report.suspect, report.timestamp) {
            self.accepted += 1;
            return IngestOutcome::AlreadyRevoked;
        }
        self.accepted += 1;
        let suspect = report.suspect;
        let now = report.timestamp;
        let queue = self.pending.entry(suspect).or_default();
        queue.push_back(report);
        // Expire reports outside the corroboration window.
        while let Some(front) = queue.front() {
            if now - front.timestamp > self.policy.window_s {
                queue.pop_front();
            } else {
                break;
            }
        }
        let reporters: HashSet<VehicleId> = queue.iter().map(|r| r.reporter).collect();
        if reporters.len() >= self.policy.min_reporters && queue.len() >= self.policy.min_reports {
            let mean_margin = queue.iter().map(Mbr::margin).sum::<f32>() / queue.len() as f32;
            let record = RevocationRecord {
                revoked_at: now,
                reporter_count: reporters.len(),
                report_count: queue.len(),
                mean_margin,
            };
            self.crl.revoke(suspect, record.clone());
            self.pending.remove(&suspect);
            IngestOutcome::Revoked(record)
        } else {
            IngestOutcome::Pending {
                reporters: reporters.len(),
                reports: queue.len(),
            }
        }
    }

    /// Number of suspects with open (unconvicted) report queues.
    pub fn pending_suspects(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> AuthorityPolicy {
        AuthorityPolicy {
            min_reporters: 2,
            min_reports: 3,
            window_s: 60.0,
            evidence_len: 4,
            revocation_validity_s: None,
        }
    }

    fn report(reporter: u32, suspect: u32, t: f64) -> Mbr {
        Mbr {
            reporter: VehicleId(reporter),
            suspect: VehicleId(suspect),
            timestamp: t,
            score: 1.0,
            threshold: 0.5,
            evidence: vec![0.0; 4],
        }
    }

    #[test]
    fn single_reporter_cannot_convict() {
        let mut ma = MisbehaviorAuthority::new(policy());
        for t in 0..10 {
            let out = ma.ingest(report(1, 9, t as f64));
            assert!(
                matches!(out, IngestOutcome::Pending { reporters: 1, .. }),
                "one reporter alone convicted at t={t}: {out:?}"
            );
        }
        assert!(!ma.crl().is_revoked(VehicleId(9), 10.0));
    }

    #[test]
    fn corroborated_reports_convict() {
        let mut ma = MisbehaviorAuthority::new(policy());
        assert!(matches!(
            ma.ingest(report(1, 9, 0.0)),
            IngestOutcome::Pending { .. }
        ));
        assert!(matches!(
            ma.ingest(report(2, 9, 1.0)),
            IngestOutcome::Pending { .. }
        ));
        let out = ma.ingest(report(1, 9, 2.0));
        match out {
            IngestOutcome::Revoked(rec) => {
                assert_eq!(rec.reporter_count, 2);
                assert_eq!(rec.report_count, 3);
                assert!((rec.mean_margin - 0.5).abs() < 1e-6);
            }
            other => panic!("expected revocation, got {other:?}"),
        }
        assert!(ma.crl().is_revoked(VehicleId(9), 2.0));
        assert_eq!(ma.pending_suspects(), 0);
    }

    #[test]
    fn stale_reports_age_out_of_the_window() {
        let mut ma = MisbehaviorAuthority::new(policy());
        let _ = ma.ingest(report(1, 9, 0.0));
        let _ = ma.ingest(report(2, 9, 1.0));
        // Third report arrives far outside the window: the first two no
        // longer corroborate.
        let out = ma.ingest(report(3, 9, 1000.0));
        assert!(
            matches!(
                out,
                IngestOutcome::Pending {
                    reporters: 1,
                    reports: 1
                }
            ),
            "{out:?}"
        );
    }

    #[test]
    fn invalid_reports_are_rejected_and_counted() {
        let mut ma = MisbehaviorAuthority::new(policy());
        let mut bad = report(1, 1, 0.0); // self-report
        bad.suspect = bad.reporter;
        assert!(matches!(ma.ingest(bad), IngestOutcome::Rejected(_)));
        assert_eq!(ma.stats(), (0, 1));
    }

    #[test]
    fn reports_after_revocation_are_noops() {
        let mut ma = MisbehaviorAuthority::new(policy());
        let _ = ma.ingest(report(1, 9, 0.0));
        let _ = ma.ingest(report(2, 9, 1.0));
        let _ = ma.ingest(report(3, 9, 2.0));
        assert!(ma.crl().is_revoked(VehicleId(9), 2.0));
        assert!(matches!(
            ma.ingest(report(4, 9, 3.0)),
            IngestOutcome::AlreadyRevoked
        ));
    }

    #[test]
    fn independent_suspects_tracked_separately() {
        let mut ma = MisbehaviorAuthority::new(policy());
        let _ = ma.ingest(report(1, 8, 0.0));
        let _ = ma.ingest(report(1, 9, 0.0));
        assert_eq!(ma.pending_suspects(), 2);
    }

    #[test]
    #[should_panic(expected = "min_reports must be")]
    fn degenerate_policy_rejected() {
        let _ = MisbehaviorAuthority::new(AuthorityPolicy {
            min_reporters: 3,
            min_reports: 1,
            ..policy()
        });
    }
}
