//! Misbehavior reports (MBRs): the evidence packet an MBDS sends to the
//! misbehavior authority (§I, §III-F).

use vehigan_sim::VehicleId;

/// A misbehavior report produced by one observer about one suspect.
///
/// Carries the ensemble verdict plus the offending snapshot as evidence,
/// so the MA can re-validate independently before acting.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Mbr {
    /// The reporting vehicle/RSU (its own pseudonym).
    pub reporter: VehicleId,
    /// The suspected misbehaving sender's pseudonym.
    pub suspect: VehicleId,
    /// Report creation time (seconds).
    pub timestamp: f64,
    /// Ensemble anomaly score of the offending window.
    pub score: f32,
    /// The detection threshold the score exceeded.
    pub threshold: f32,
    /// The flattened `w × f` evidence snapshot.
    pub evidence: Vec<f32>,
}

/// Validation failure for a received report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvalidMbrError {
    /// Score did not actually exceed the threshold.
    ScoreBelowThreshold,
    /// Score or threshold was not a finite number.
    NonFiniteScore,
    /// Timestamp was NaN or infinite. A NaN timestamp makes every
    /// window-expiry comparison false, so such a report would otherwise
    /// pin itself in the corroboration state forever.
    NonFiniteTimestamp,
    /// Evidence snapshot was empty or the wrong size.
    BadEvidence {
        /// Expected flat length (`w · f`), or 0 if unknown.
        expected: usize,
        /// Received length.
        got: usize,
    },
    /// A vehicle reported itself (self-reports are discarded — a
    /// misbehaving insider could otherwise build false credibility).
    SelfReport,
    /// Evidence values escaped the scaled sensor domain `[-1, 1]`.
    EvidenceOutOfRange,
}

impl std::fmt::Display for InvalidMbrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvalidMbrError::ScoreBelowThreshold => {
                write!(f, "reported score does not exceed the threshold")
            }
            InvalidMbrError::NonFiniteScore => write!(f, "score or threshold is not finite"),
            InvalidMbrError::NonFiniteTimestamp => write!(f, "timestamp is not finite"),
            InvalidMbrError::BadEvidence { expected, got } => {
                write!(
                    f,
                    "evidence length {got} does not match expected {expected}"
                )
            }
            InvalidMbrError::SelfReport => write!(f, "reporter and suspect are the same vehicle"),
            InvalidMbrError::EvidenceOutOfRange => {
                write!(f, "evidence values escape the scaled domain [-1, 1]")
            }
        }
    }
}

impl std::error::Error for InvalidMbrError {}

impl Mbr {
    /// Structural validation an authority performs before trusting a
    /// report.
    ///
    /// # Errors
    ///
    /// Returns the first failed check; see [`InvalidMbrError`].
    pub fn validate(&self, expected_evidence_len: usize) -> Result<(), InvalidMbrError> {
        if self.reporter == self.suspect {
            return Err(InvalidMbrError::SelfReport);
        }
        if !self.score.is_finite() || !self.threshold.is_finite() {
            return Err(InvalidMbrError::NonFiniteScore);
        }
        if !self.timestamp.is_finite() {
            return Err(InvalidMbrError::NonFiniteTimestamp);
        }
        if self.score <= self.threshold {
            return Err(InvalidMbrError::ScoreBelowThreshold);
        }
        if self.evidence.len() != expected_evidence_len {
            return Err(InvalidMbrError::BadEvidence {
                expected: expected_evidence_len,
                got: self.evidence.len(),
            });
        }
        if self
            .evidence
            .iter()
            .any(|v| !v.is_finite() || *v < -1.0 - 1e-6 || *v > 1.0 + 1e-6)
        {
            return Err(InvalidMbrError::EvidenceOutOfRange);
        }
        Ok(())
    }

    /// How far the score exceeded the threshold (the report's "strength").
    pub fn margin(&self) -> f32 {
        self.score - self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_report() -> Mbr {
        Mbr {
            reporter: VehicleId(1),
            suspect: VehicleId(2),
            timestamp: 10.0,
            score: 0.5,
            threshold: 0.2,
            evidence: vec![0.0; 120],
        }
    }

    #[test]
    fn valid_report_passes() {
        assert!(valid_report().validate(120).is_ok());
    }

    #[test]
    fn self_report_rejected() {
        let mut r = valid_report();
        r.suspect = r.reporter;
        assert_eq!(r.validate(120), Err(InvalidMbrError::SelfReport));
    }

    #[test]
    fn below_threshold_rejected() {
        let mut r = valid_report();
        r.score = 0.1;
        assert_eq!(r.validate(120), Err(InvalidMbrError::ScoreBelowThreshold));
    }

    #[test]
    fn nan_rejected() {
        let mut r = valid_report();
        r.score = f32::NAN;
        assert_eq!(r.validate(120), Err(InvalidMbrError::NonFiniteScore));
    }

    #[test]
    fn non_finite_timestamp_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut r = valid_report();
            r.timestamp = bad;
            assert_eq!(r.validate(120), Err(InvalidMbrError::NonFiniteTimestamp));
        }
    }

    #[test]
    fn wrong_evidence_len_rejected() {
        let r = valid_report();
        assert_eq!(
            r.validate(64),
            Err(InvalidMbrError::BadEvidence {
                expected: 64,
                got: 120
            })
        );
    }

    #[test]
    fn out_of_domain_evidence_rejected() {
        let mut r = valid_report();
        r.evidence[5] = 3.0;
        assert_eq!(r.validate(120), Err(InvalidMbrError::EvidenceOutOfRange));
    }

    #[test]
    fn margin_is_score_excess() {
        let r = valid_report();
        assert!((r.margin() - 0.3).abs() < 1e-6);
    }

    #[test]
    fn error_messages_are_lowercase() {
        for e in [
            InvalidMbrError::ScoreBelowThreshold,
            InvalidMbrError::NonFiniteScore,
            InvalidMbrError::NonFiniteTimestamp,
            InvalidMbrError::SelfReport,
            InvalidMbrError::EvidenceOutOfRange,
        ] {
            assert!(e.to_string().starts_with(char::is_lowercase));
        }
    }
}
