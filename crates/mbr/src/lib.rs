//! # vehigan-mbr
//!
//! The misbehavior-reporting side of the V2X security architecture the
//! VehiGAN paper assumes around its detector (§I–II): when the MBDS on an
//! OBU/RSU flags a vehicle, it sends a misbehavior report ([`Mbr`]) with
//! evidence to the misbehavior authority ([`MisbehaviorAuthority`]), which
//! corroborates reports across independent observers and places convicted
//! credentials on the certificate revocation list
//! ([`CertificateRevocationList`]), isolating the attacker. The
//! [`PseudonymManager`] provides the SCMS linkage from transmitted
//! pseudonyms back to long-term identities.
//!
//! # Example
//!
//! See [`MisbehaviorAuthority`] and `examples/reporting_authority.rs` for
//! the end-to-end OBU → MBR → MA → CRL flow.

#![warn(missing_docs)]

mod authority;
mod crl;
mod pseudonym;
mod report;

pub use authority::{AuthorityPolicy, IngestOutcome, MisbehaviorAuthority};
pub use crl::{CertificateRevocationList, RevocationRecord};
pub use pseudonym::{LongTermId, PseudonymManager};
pub use report::{InvalidMbrError, Mbr};
