//! # vehigan-mbr
//!
//! The misbehavior-reporting side of the V2X security architecture the
//! VehiGAN paper assumes around its detector (§I–II): when the MBDS on an
//! OBU/RSU flags a vehicle, it sends a misbehavior report ([`Mbr`]) with
//! evidence to the misbehavior authority ([`MisbehaviorAuthority`]), which
//! corroborates reports across independent observers and places convicted
//! credentials on the certificate revocation list
//! ([`CertificateRevocationList`]), isolating the attacker. The
//! [`PseudonymManager`] provides the SCMS linkage from transmitted
//! pseudonyms back to long-term identities; attach it with
//! [`MisbehaviorAuthority::with_linkage`] so conviction revokes *all* of
//! a vehicle's pseudonyms.
//!
//! The authority scales to fleet ingest: per-suspect evidence is a
//! bounded decaying accumulator ([`SuspectEvidence`]) with a
//! HyperLogLog-backed reporter sketch ([`ReporterSketch`]), batches fan
//! out across hash-partitioned shards
//! ([`MisbehaviorAuthority::ingest_batch`], bitwise-identical to serial
//! ingest), and CRL mirrors sync incrementally by sequence number
//! ([`CrlDelta`]).
//!
//! # Example
//!
//! See [`MisbehaviorAuthority`] and `examples/reporting_authority.rs` for
//! the end-to-end OBU → MBR → MA → CRL flow.

#![warn(missing_docs)]

mod authority;
mod crl;
mod evidence;
mod pseudonym;
mod report;
mod sketch;

pub use authority::{
    AuthorityPolicy, AuthorityStats, BatchReport, Conviction, IngestOutcome, MisbehaviorAuthority,
};
pub use crl::{CertificateRevocationList, CrlDelta, CrlOp, RevocationRecord};
pub use evidence::{Observation, SuspectEvidence};
pub use pseudonym::{LongTermId, PseudonymManager};
pub use report::{InvalidMbrError, Mbr};
pub use sketch::{Hll, ReporterSketch, EXACT_CAP};
