//! Pseudonym management: the SCMS issues vehicles rotating short-term
//! pseudonyms; the linkage function lets the MA map a convicted pseudonym
//! back to the long-term credential so revocation covers *all* of the
//! vehicle's pseudonyms (§I, [5]).

use std::collections::HashMap;
use vehigan_sim::VehicleId;

/// A vehicle's long-term enrollment identity (never transmitted).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct LongTermId(pub u32);

/// Issues short-term pseudonyms and retains the linkage map.
///
/// Pseudonym values are unique across all vehicles (a fresh pseudonym
/// never collides with an existing one).
///
/// # Examples
///
/// ```
/// use vehigan_mbr::{LongTermId, PseudonymManager};
///
/// let mut scms = PseudonymManager::new();
/// let p1 = scms.issue(LongTermId(7));
/// let p2 = scms.issue(LongTermId(7)); // rotation
/// assert_ne!(p1, p2);
/// assert_eq!(scms.resolve(p1), Some(LongTermId(7)));
/// assert_eq!(scms.pseudonyms_of(LongTermId(7)), vec![p1, p2]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PseudonymManager {
    next: u32,
    linkage: HashMap<VehicleId, LongTermId>,
    issued: HashMap<LongTermId, Vec<VehicleId>>,
}

impl PseudonymManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        PseudonymManager::default()
    }

    /// Issues a fresh pseudonym for the given long-term identity.
    pub fn issue(&mut self, vehicle: LongTermId) -> VehicleId {
        let pseudonym = VehicleId(self.next);
        self.next += 1;
        self.linkage.insert(pseudonym, vehicle);
        self.issued.entry(vehicle).or_default().push(pseudonym);
        pseudonym
    }

    /// Resolves a pseudonym to its long-term identity (the MA-side
    /// linkage function).
    pub fn resolve(&self, pseudonym: VehicleId) -> Option<LongTermId> {
        self.linkage.get(&pseudonym).copied()
    }

    /// All pseudonyms ever issued to a vehicle, in issue order.
    pub fn pseudonyms_of(&self, vehicle: LongTermId) -> Vec<VehicleId> {
        self.issued.get(&vehicle).cloned().unwrap_or_default()
    }

    /// Number of pseudonyms issued so far.
    pub fn issued_count(&self) -> usize {
        self.linkage.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pseudonyms_are_unique_across_vehicles() {
        let mut scms = PseudonymManager::new();
        let a = scms.issue(LongTermId(1));
        let b = scms.issue(LongTermId(2));
        let c = scms.issue(LongTermId(1));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        assert_eq!(scms.issued_count(), 3);
    }

    #[test]
    fn linkage_resolves_all_rotations() {
        let mut scms = PseudonymManager::new();
        let ps: Vec<VehicleId> = (0..5).map(|_| scms.issue(LongTermId(9))).collect();
        for p in &ps {
            assert_eq!(scms.resolve(*p), Some(LongTermId(9)));
        }
        assert_eq!(scms.pseudonyms_of(LongTermId(9)), ps);
    }

    #[test]
    fn unknown_pseudonym_unresolvable() {
        let scms = PseudonymManager::new();
        assert_eq!(scms.resolve(VehicleId(99)), None);
        assert!(scms.pseudonyms_of(LongTermId(1)).is_empty());
    }
}
