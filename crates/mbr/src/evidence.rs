//! Bounded, decaying per-suspect evidence state.
//!
//! The seed authority retained every report in a per-suspect
//! `VecDeque<Mbr>` — unbounded memory (each report carries a ~480-byte
//! evidence snapshot) and O(queue) work per ingest to rebuild the
//! distinct-reporter set. [`SuspectEvidence`] replaces the queue with a
//! constant-size accumulator:
//!
//! - **`high_water`** — the maximum report timestamp seen for this
//!   suspect. Window expiry is keyed to this clock, *not* to the latest
//!   report's timestamp, so replaying an old timestamp can no longer
//!   hold stale evidence inside the window (the replay-expiry bug).
//! - **`weight`** — an exponentially decayed report count with half-life
//!   `window_s / 2`: a report contributes 1.0 when fresh and has decayed
//!   to 0.25 by the time it leaves the window, approximating the sliding
//!   window's hard cutoff with O(1) state. Conviction compares
//!   `weight.round()` against `min_reports`.
//! - **`margin`** — the same decay applied to report margins
//!   (score − threshold), so `margin / weight` is the decayed mean
//!   margin recorded on conviction.
//! - **`reporters`** — a window-pruned [`ReporterSketch`] for the
//!   distinct-reporter requirement.
//!
//! Two hard cutoffs keep the approximation honest: a report older than
//! the window relative to `high_water` is discarded outright
//! (`Observation::Stale` — decay alone would still credit it ~0.2), and
//! a report *newer* than `high_water` by more than a full window resets
//! the accumulator (the suspect went quiet; whatever decayed mass
//! remained is off-window by definition).
//!
//! All arithmetic is plain `f64` with no iteration-order dependence, so
//! replaying the same per-suspect report sequence reproduces bitwise-
//! identical state — the property the sharded `ingest_batch` equivalence
//! proof in `authority.rs` rests on.

use crate::sketch::ReporterSketch;
use vehigan_sim::VehicleId;

/// What ingesting one report did to a suspect's evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observation {
    /// The report entered the accumulator (possibly after a gap reset).
    Absorbed,
    /// The report's timestamp was a full window older than the suspect's
    /// high-water clock: discarded without touching state.
    Stale,
}

/// Constant-size decaying evidence accumulator for one accused
/// pseudonym (see module docs for the math).
#[derive(Debug, Clone, Default)]
pub struct SuspectEvidence {
    /// Maximum report timestamp seen (the suspect's expiry clock).
    pub high_water: f64,
    /// Exponentially decayed report count.
    pub weight: f64,
    /// Exponentially decayed margin sum.
    pub margin: f64,
    /// Window-pruned distinct-reporter set.
    pub reporters: ReporterSketch,
}

impl SuspectEvidence {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        SuspectEvidence::default()
    }

    /// Whether no report has been absorbed since creation/reset.
    pub fn is_empty(&self) -> bool {
        self.weight == 0.0
    }

    /// Absorbs one report (reporter, timestamp, margin) under the given
    /// corroboration window, returning whether it was absorbed or
    /// stale-discarded.
    pub fn observe(
        &mut self,
        reporter: VehicleId,
        t: f64,
        margin: f64,
        window_s: f64,
    ) -> Observation {
        let half_life = window_s * 0.5;
        if self.is_empty() {
            self.high_water = t;
            self.weight = 1.0;
            self.margin = margin;
            self.reporters.observe(reporter, t, window_s);
            return Observation::Absorbed;
        }
        if t > self.high_water {
            if t - self.high_water > window_s {
                // The suspect went quiet for a full window: everything
                // accumulated is off-window. Start over.
                *self = SuspectEvidence::new();
                return self.observe(reporter, t, margin, window_s);
            }
            let d = f64::exp2(-(t - self.high_water) / half_life);
            self.weight = self.weight * d + 1.0;
            self.margin = self.margin * d + margin;
            self.high_water = t;
            self.reporters.observe(reporter, t, window_s);
            Observation::Absorbed
        } else {
            let age = self.high_water - t;
            if age > window_s {
                // Replayed/ancient timestamp: off-window evidence must
                // not accrue weight at all.
                return Observation::Stale;
            }
            let w = f64::exp2(-age / half_life);
            self.weight += w;
            self.margin += w * margin;
            self.reporters.observe(reporter, t, window_s);
            Observation::Absorbed
        }
    }

    /// Decayed report count, rounded to the nearest whole report (what
    /// conviction compares against `min_reports`).
    pub fn report_count(&self) -> usize {
        self.weight.round() as usize
    }

    /// Distinct reporters with in-window evidence.
    pub fn reporter_count(&self, window_s: f64) -> usize {
        self.reporters.count(self.high_water, window_s)
    }

    /// Decayed mean margin (0 when empty).
    pub fn mean_margin(&self) -> f32 {
        if self.weight > 0.0 {
            (self.margin / self.weight) as f32
        } else {
            0.0
        }
    }

    /// FNV-1a digest of the accumulator's exact bit state (for the
    /// serial ≡ sharded equivalence tests).
    #[doc(hidden)]
    pub fn digest(&self, mut h: u64) -> u64 {
        let mut fold = |bits: u64| {
            for b in bits.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        fold(self.high_water.to_bits());
        fold(self.weight.to_bits());
        fold(self.margin.to_bits());
        match &self.reporters {
            ReporterSketch::Exact { entries, len } => {
                fold(*len as u64);
                for e in &entries[..*len] {
                    fold(e.0 as u64);
                    fold(e.1.to_bits());
                }
            }
            ReporterSketch::Sketch(hll) => {
                fold(u64::MAX);
                fold(hll.estimate() as u64);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: f64 = 60.0;

    #[test]
    fn fresh_report_counts_fully() {
        let mut e = SuspectEvidence::new();
        assert_eq!(e.observe(VehicleId(1), 10.0, 0.5, W), Observation::Absorbed);
        assert_eq!(e.report_count(), 1);
        assert_eq!(e.reporter_count(W), 1);
        assert!((e.mean_margin() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn decay_halves_weight_per_half_window() {
        let mut e = SuspectEvidence::new();
        e.observe(VehicleId(1), 0.0, 0.5, W);
        e.observe(VehicleId(2), W / 2.0, 0.5, W);
        // First report decayed to 0.5, second contributes 1.0.
        assert!((e.weight - 1.5).abs() < 1e-12);
    }

    #[test]
    fn old_but_in_window_report_counts_decayed() {
        let mut e = SuspectEvidence::new();
        e.observe(VehicleId(1), 100.0, 0.5, W);
        // A report 30 s older than the high-water arrives late: absorbed
        // at half weight, and the clock does NOT move backwards.
        assert_eq!(e.observe(VehicleId(2), 70.0, 0.5, W), Observation::Absorbed);
        assert!((e.weight - 1.5).abs() < 1e-12);
        assert_eq!(e.high_water, 100.0);
    }

    #[test]
    fn off_window_replay_is_discarded() {
        let mut e = SuspectEvidence::new();
        e.observe(VehicleId(1), 1000.0, 0.5, W);
        let before = e.digest(0xcbf2_9ce4_8422_2325);
        assert_eq!(e.observe(VehicleId(2), 1.0, 0.9, W), Observation::Stale);
        assert_eq!(
            e.digest(0xcbf2_9ce4_8422_2325),
            before,
            "stale report mutated state"
        );
    }

    #[test]
    fn full_window_gap_resets() {
        let mut e = SuspectEvidence::new();
        for i in 0..10 {
            e.observe(VehicleId(i), i as f64, 0.5, W);
        }
        e.observe(VehicleId(99), 1000.0, 0.5, W);
        assert_eq!(e.report_count(), 1);
        assert_eq!(e.reporter_count(W), 1);
    }

    #[test]
    fn mean_margin_is_exact_for_constant_margins() {
        let mut e = SuspectEvidence::new();
        for i in 0..50 {
            e.observe(VehicleId(i % 5), i as f64, 0.25, W);
        }
        assert!((e.mean_margin() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn state_is_constant_size() {
        // The whole point: no per-report retention. Keep the accumulator
        // comfortably under half a KiB.
        assert!(std::mem::size_of::<SuspectEvidence>() <= 512);
    }
}
