//! Reporter-cardinality tracking in bounded memory.
//!
//! Conviction requires *distinct* corroborating reporters
//! ([`crate::AuthorityPolicy::min_reporters`]), so the authority must
//! count how many different observers accused a suspect inside the
//! corroboration window. The seed implementation rebuilt a `HashSet`
//! over the full retained report queue on every ingest — O(reports) time
//! and memory per suspect. At fleet scale a suspect can be accused by
//! thousands of observers, so this module tracks distinct reporters in
//! O(1) memory per suspect with a two-mode [`ReporterSketch`]:
//!
//! - **Exact mode** — up to [`EXACT_CAP`] `(reporter, last_seen)` pairs
//!   inline. Conviction thresholds are small (2–3 reporters), and in
//!   exact mode counts are *precise* and *window-pruned*: a reporter
//!   whose last accusation aged past the window stops counting. This is
//!   the mode every conviction decision near the threshold runs in.
//! - **Sketch mode** — once more than [`EXACT_CAP`] distinct reporters
//!   are live at once, the set upgrades to a [`Hll`] (HyperLogLog,
//!   2⁸ = 256 registers, ~6.5 % standard error). Far above any conviction
//!   threshold the exact count no longer matters; the sketch keeps the
//!   reporter-count statistic honest at campaign scale (hundreds of
//!   observers) without per-reporter state. Sketch registers cannot be
//!   window-pruned; the set resets wholesale with the suspect's evidence
//!   on a full-window report gap (see `SuspectEvidence`).
//!
//! All hashing is an explicit SplitMix64 finalizer, so estimates are a
//! pure function of the inserted ids — identical across runs, shards,
//! and serial-vs-batch ingest (the determinism contract the authority's
//! sharded `ingest_batch` relies on).

use vehigan_sim::VehicleId;

/// Distinct reporters tracked exactly (with per-reporter window pruning)
/// before a suspect's set upgrades to the HyperLogLog sketch.
pub const EXACT_CAP: usize = 16;

/// HyperLogLog register-index bits (`m = 2^P` registers).
const HLL_P: u32 = 8;
/// HyperLogLog register count.
const HLL_M: usize = 1 << HLL_P;

/// SplitMix64 finalizer: a high-quality 64-bit mix, deterministic and
/// dependency-free.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A HyperLogLog distinct-count sketch over reporter pseudonyms
/// (Flajolet et al.; 256 registers, one byte each).
///
/// # Examples
///
/// ```
/// use vehigan_mbr::Hll;
/// use vehigan_sim::VehicleId;
///
/// let mut hll = Hll::new();
/// for i in 0..1000 {
///     hll.insert(VehicleId(i));
///     hll.insert(VehicleId(i)); // duplicates don't count
/// }
/// let est = hll.estimate();
/// assert!((est as f64 - 1000.0).abs() / 1000.0 < 0.25);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hll {
    registers: [u8; HLL_M],
}

impl Default for Hll {
    fn default() -> Self {
        Hll::new()
    }
}

impl Hll {
    /// Creates an empty sketch.
    pub fn new() -> Self {
        Hll {
            registers: [0u8; HLL_M],
        }
    }

    /// Folds one reporter id into the sketch. Idempotent per id.
    pub fn insert(&mut self, id: VehicleId) {
        let h = mix64(id.0 as u64);
        let idx = (h >> (64 - HLL_P)) as usize;
        // Rank of the first set bit in the remaining 56 bits (1-based);
        // an all-zero remainder gets the maximum rank.
        let rest = h << HLL_P;
        let rho = (rest.leading_zeros().min(63 - HLL_P) + 1) as u8;
        if rho > self.registers[idx] {
            self.registers[idx] = rho;
        }
    }

    /// Estimated number of distinct ids inserted, with the standard
    /// small-range (linear counting) correction.
    pub fn estimate(&self) -> usize {
        let m = HLL_M as f64;
        // alpha_m for m = 256.
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let mut sum = 0.0f64;
        let mut zeros = 0usize;
        for &r in &self.registers {
            sum += f64::exp2(-(r as f64));
            if r == 0 {
                zeros += 1;
            }
        }
        let raw = alpha * m * m / sum;
        let est = if raw <= 2.5 * m && zeros > 0 {
            m * (m / zeros as f64).ln()
        } else {
            raw
        };
        est.round() as usize
    }

    /// Whether no id has been inserted.
    pub fn is_empty(&self) -> bool {
        self.registers.iter().all(|&r| r == 0)
    }
}

/// Bounded distinct-reporter set: exact and window-pruned up to
/// [`EXACT_CAP`] live reporters, HyperLogLog beyond (see module docs).
#[derive(Debug, Clone)]
pub enum ReporterSketch {
    /// Precise mode: `(reporter, last accusation timestamp)` pairs.
    Exact {
        /// Live entries (first `len` slots are valid).
        entries: [(u32, f64); EXACT_CAP],
        /// Number of valid entries.
        len: usize,
    },
    /// Estimated mode for campaign-scale reporter counts.
    Sketch(Hll),
}

impl Default for ReporterSketch {
    fn default() -> Self {
        ReporterSketch::new()
    }
}

impl ReporterSketch {
    /// Creates an empty (exact-mode) set.
    pub fn new() -> Self {
        ReporterSketch::Exact {
            entries: [(0u32, 0.0f64); EXACT_CAP],
            len: 0,
        }
    }

    /// Records an accusation by `reporter` whose evidence is current at
    /// time `t` (the suspect's high-water clock), pruning exact entries
    /// older than `window_s` and upgrading to the sketch on overflow.
    pub fn observe(&mut self, reporter: VehicleId, t: f64, window_s: f64) {
        match self {
            ReporterSketch::Exact { entries, len } => {
                // Known reporter: refresh its last-seen clock (monotone).
                for e in entries[..*len].iter_mut() {
                    if e.0 == reporter.0 {
                        if t > e.1 {
                            e.1 = t;
                        }
                        return;
                    }
                }
                // Drop reporters whose last accusation aged out.
                let mut kept = 0usize;
                for i in 0..*len {
                    if t - entries[i].1 <= window_s {
                        entries[kept] = entries[i];
                        kept += 1;
                    }
                }
                *len = kept;
                if *len < EXACT_CAP {
                    entries[*len] = (reporter.0, t);
                    *len += 1;
                } else {
                    // Overflow: carry every live reporter into the sketch.
                    let mut hll = Hll::new();
                    for e in entries[..*len].iter() {
                        hll.insert(VehicleId(e.0));
                    }
                    hll.insert(reporter);
                    *self = ReporterSketch::Sketch(hll);
                }
            }
            ReporterSketch::Sketch(hll) => hll.insert(reporter),
        }
    }

    /// Distinct reporters with evidence inside the window ending at `t`
    /// (exact mode) or the sketch estimate (sketch mode, unpruned).
    pub fn count(&self, t: f64, window_s: f64) -> usize {
        match self {
            ReporterSketch::Exact { entries, len } => entries[..*len]
                .iter()
                .filter(|e| t - e.1 <= window_s)
                .count(),
            ReporterSketch::Sketch(hll) => hll.estimate(),
        }
    }

    /// Whether the set upgraded to the HyperLogLog sketch.
    pub fn is_sketch(&self) -> bool {
        matches!(self, ReporterSketch::Sketch(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_counts_are_exact_and_pruned() {
        let mut s = ReporterSketch::new();
        s.observe(VehicleId(1), 0.0, 60.0);
        s.observe(VehicleId(2), 10.0, 60.0);
        s.observe(VehicleId(1), 20.0, 60.0); // duplicate refresh
        assert_eq!(s.count(20.0, 60.0), 2);
        // Reporter 2's last accusation (t=10) ages out of a window ending
        // at t=80; reporter 1 (refreshed at t=20) stays.
        assert_eq!(s.count(80.0, 60.0), 1);
        assert!(!s.is_sketch());
    }

    #[test]
    fn overflow_upgrades_to_sketch() {
        let mut s = ReporterSketch::new();
        for i in 0..(EXACT_CAP as u32 + 1) {
            s.observe(VehicleId(i), 0.0, 60.0);
        }
        assert!(s.is_sketch());
        let est = s.count(0.0, 60.0);
        let n = EXACT_CAP + 1;
        assert!(
            (est as f64 - n as f64).abs() <= 4.0,
            "estimate {est} far from {n}"
        );
    }

    #[test]
    fn stale_reporters_pruned_before_overflow() {
        let mut s = ReporterSketch::new();
        // Fill to the cap with reporters that will all be stale…
        for i in 0..EXACT_CAP as u32 {
            s.observe(VehicleId(i), 0.0, 60.0);
        }
        // …then a fresh reporter far later: pruning frees every slot, so
        // the set stays exact.
        s.observe(VehicleId(99), 1000.0, 60.0);
        assert!(!s.is_sketch());
        assert_eq!(s.count(1000.0, 60.0), 1);
    }

    #[test]
    fn hll_estimates_within_error_bound() {
        for (seed, n) in [(1u64, 100usize), (2, 1_000), (3, 10_000)] {
            let mut hll = Hll::new();
            for i in 0..n as u64 {
                hll.insert(VehicleId(
                    mix64(seed.wrapping_mul(1 << 20).wrapping_add(i)) as u32
                ));
            }
            let est = hll.estimate() as f64;
            let rel = (est - n as f64).abs() / n as f64;
            assert!(rel < 0.25, "n={n}: estimate {est} rel err {rel:.3}");
        }
    }

    #[test]
    fn hll_is_deterministic_and_duplicate_insensitive() {
        let mut a = Hll::new();
        let mut b = Hll::new();
        for i in 0..500u32 {
            a.insert(VehicleId(i));
            b.insert(VehicleId(i));
            b.insert(VehicleId(i));
        }
        assert_eq!(a, b);
        assert_eq!(a.estimate(), b.estimate());
    }
}
