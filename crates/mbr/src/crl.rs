//! Certificate revocation list (CRL) — the SCMS mechanism isolating
//! convicted misbehaving vehicles from the V2X network (§I, [5]).

use std::collections::HashMap;
use vehigan_sim::VehicleId;

/// Why a credential was revoked.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RevocationRecord {
    /// Revocation time (seconds).
    pub revoked_at: f64,
    /// Distinct reporters that contributed evidence.
    pub reporter_count: usize,
    /// Total reports considered.
    pub report_count: usize,
    /// Mean report margin (score excess over threshold).
    pub mean_margin: f32,
}

/// A certificate revocation list with optional entry expiry.
///
/// # Examples
///
/// ```
/// use vehigan_mbr::{CertificateRevocationList, RevocationRecord};
/// use vehigan_sim::VehicleId;
///
/// let mut crl = CertificateRevocationList::new(None);
/// crl.revoke(VehicleId(7), RevocationRecord {
///     revoked_at: 12.0, reporter_count: 3, report_count: 9, mean_margin: 0.4,
/// });
/// assert!(crl.is_revoked(VehicleId(7), 100.0));
/// assert!(!crl.is_revoked(VehicleId(8), 100.0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CertificateRevocationList {
    entries: HashMap<VehicleId, RevocationRecord>,
    /// Entries older than this many seconds no longer apply (`None` =
    /// permanent revocation).
    validity_s: Option<f64>,
}

impl CertificateRevocationList {
    /// Creates an empty CRL; `validity_s = None` makes entries permanent.
    pub fn new(validity_s: Option<f64>) -> Self {
        CertificateRevocationList {
            entries: HashMap::new(),
            validity_s,
        }
    }

    /// Adds (or refreshes) a revocation. Returns the previous record if
    /// the vehicle was already revoked.
    pub fn revoke(
        &mut self,
        vehicle: VehicleId,
        record: RevocationRecord,
    ) -> Option<RevocationRecord> {
        self.entries.insert(vehicle, record)
    }

    /// Whether `vehicle` is revoked at time `now`.
    pub fn is_revoked(&self, vehicle: VehicleId, now: f64) -> bool {
        match (self.entries.get(&vehicle), self.validity_s) {
            (Some(rec), Some(validity)) => now - rec.revoked_at <= validity,
            (Some(_), None) => true,
            (None, _) => false,
        }
    }

    /// The revocation record for a vehicle, if any.
    pub fn record(&self, vehicle: VehicleId) -> Option<&RevocationRecord> {
        self.entries.get(&vehicle)
    }

    /// Number of revoked credentials (including expired entries).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the CRL is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops entries that expired before `now` (no-op for permanent CRLs).
    pub fn prune(&mut self, now: f64) {
        if let Some(validity) = self.validity_s {
            self.entries
                .retain(|_, rec| now - rec.revoked_at <= validity);
        }
    }

    /// Iterates over `(vehicle, record)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&VehicleId, &RevocationRecord)> {
        self.entries.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(at: f64) -> RevocationRecord {
        RevocationRecord {
            revoked_at: at,
            reporter_count: 2,
            report_count: 4,
            mean_margin: 0.1,
        }
    }

    #[test]
    fn permanent_revocation_never_expires() {
        let mut crl = CertificateRevocationList::new(None);
        crl.revoke(VehicleId(1), record(0.0));
        assert!(crl.is_revoked(VehicleId(1), 1e9));
    }

    #[test]
    fn expiring_revocation_lapses() {
        let mut crl = CertificateRevocationList::new(Some(60.0));
        crl.revoke(VehicleId(1), record(100.0));
        assert!(crl.is_revoked(VehicleId(1), 150.0));
        assert!(!crl.is_revoked(VehicleId(1), 200.0));
    }

    #[test]
    fn prune_removes_expired_only() {
        let mut crl = CertificateRevocationList::new(Some(60.0));
        crl.revoke(VehicleId(1), record(0.0));
        crl.revoke(VehicleId(2), record(100.0));
        crl.prune(120.0);
        assert_eq!(crl.len(), 1);
        assert!(crl.record(VehicleId(2)).is_some());
    }

    #[test]
    fn re_revocation_returns_previous() {
        let mut crl = CertificateRevocationList::new(None);
        assert!(crl.revoke(VehicleId(1), record(0.0)).is_none());
        let prev = crl.revoke(VehicleId(1), record(50.0));
        assert_eq!(prev.unwrap().revoked_at, 0.0);
    }

    #[test]
    fn unknown_vehicle_not_revoked() {
        let crl = CertificateRevocationList::new(None);
        assert!(!crl.is_revoked(VehicleId(9), 0.0));
        assert!(crl.is_empty());
    }
}
