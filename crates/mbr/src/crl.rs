//! Certificate revocation list (CRL) — the SCMS mechanism isolating
//! convicted misbehaving vehicles from the V2X network (§I, [5]).
//!
//! Besides the membership map, the CRL keeps a bounded, sequence-numbered
//! op journal so RSUs/OBUs holding a stale mirror can fetch an
//! incremental [`CrlDelta`] instead of the full list: a mirror presents
//! its last-applied sequence number, and [`delta_since`]
//! (`CertificateRevocationList::delta_since`) answers with just the ops
//! it missed — or a full snapshot when the journal has already compacted
//! past that cursor.
//!
//! Equality between two CRLs compares the *entry set* and validity
//! policy only, never journal op order: serial ingest and the sharded
//! `ingest_batch` apply the same revocations in different op orders and
//! must still compare equal.

use std::collections::HashMap;
use vehigan_sim::VehicleId;

/// Why a credential was revoked.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RevocationRecord {
    /// Revocation time (seconds).
    pub revoked_at: f64,
    /// Distinct reporters that contributed evidence.
    pub reporter_count: usize,
    /// Total reports considered.
    pub report_count: usize,
    /// Mean report margin (score excess over threshold).
    pub mean_margin: f32,
}

/// One journaled CRL mutation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum CrlOp {
    /// A credential was revoked (or its record refreshed).
    Revoke {
        /// The revoked pseudonym.
        vehicle: VehicleId,
        /// The record placed on the list.
        record: RevocationRecord,
    },
    /// An expired entry was pruned from the list.
    Remove {
        /// The removed pseudonym.
        vehicle: VehicleId,
    },
}

/// An incremental CRL update for a mirror at sequence `since`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CrlDelta {
    /// The mirror's cursor this delta starts after.
    pub since: u64,
    /// The sequence number the mirror reaches by applying this delta.
    pub upto: u64,
    /// When `true`, `ops` is a full snapshot (the journal compacted past
    /// `since`): the mirror must clear its entries before applying.
    pub snapshot: bool,
    /// Ops to apply in order.
    pub ops: Vec<CrlOp>,
}

/// Default bound on retained journal ops before compaction.
const DEFAULT_LOG_CAPACITY: usize = 4096;

/// A certificate revocation list with optional entry expiry and an
/// incremental-distribution journal.
///
/// # Examples
///
/// ```
/// use vehigan_mbr::{CertificateRevocationList, RevocationRecord};
/// use vehigan_sim::VehicleId;
///
/// let mut crl = CertificateRevocationList::new(None);
/// crl.revoke(VehicleId(7), RevocationRecord {
///     revoked_at: 12.0, reporter_count: 3, report_count: 9, mean_margin: 0.4,
/// });
/// assert!(crl.is_revoked(VehicleId(7), 100.0));
/// assert!(!crl.is_revoked(VehicleId(8), 100.0));
///
/// // A mirror syncs incrementally by sequence number.
/// let mut mirror = CertificateRevocationList::new(None);
/// let delta = crl.delta_since(mirror.seq());
/// mirror.apply_delta(&delta);
/// assert_eq!(mirror, crl);
/// ```
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CertificateRevocationList {
    entries: HashMap<VehicleId, RevocationRecord>,
    /// Entries older than this many seconds no longer apply (`None` =
    /// permanent revocation).
    validity_s: Option<f64>,
    /// Sequence number of the last applied op.
    seq: u64,
    /// Retained `(seq, op)` journal, oldest first.
    log: Vec<(u64, CrlOp)>,
    /// Journal bound; older ops are compacted away.
    log_capacity: usize,
}

impl Default for CertificateRevocationList {
    fn default() -> Self {
        CertificateRevocationList::new(None)
    }
}

/// Entry-set equality (validity policy included, journal excluded — see
/// module docs).
impl PartialEq for CertificateRevocationList {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries && self.validity_s == other.validity_s
    }
}

impl CertificateRevocationList {
    /// Creates an empty CRL; `validity_s = None` makes entries permanent.
    pub fn new(validity_s: Option<f64>) -> Self {
        CertificateRevocationList {
            entries: HashMap::new(),
            validity_s,
            seq: 0,
            log: Vec::new(),
            log_capacity: DEFAULT_LOG_CAPACITY,
        }
    }

    /// Bounds the retained journal to `capacity` ops (compacting
    /// immediately if already over).
    pub fn set_log_capacity(&mut self, capacity: usize) {
        self.log_capacity = capacity;
        self.compact();
    }

    fn compact(&mut self) {
        if self.log.len() > self.log_capacity {
            let excess = self.log.len() - self.log_capacity;
            self.log.drain(..excess);
        }
    }

    fn journal(&mut self, op: CrlOp) {
        self.seq += 1;
        self.log.push((self.seq, op));
        self.compact();
    }

    /// Sequence number of the last applied op (a mirror's sync cursor).
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Number of ops currently retained in the journal.
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Adds (or refreshes) a revocation. Returns the previous record if
    /// the vehicle was already revoked.
    pub fn revoke(
        &mut self,
        vehicle: VehicleId,
        record: RevocationRecord,
    ) -> Option<RevocationRecord> {
        let prev = self.entries.insert(vehicle, record.clone());
        self.journal(CrlOp::Revoke { vehicle, record });
        prev
    }

    /// Whether `vehicle` is revoked at time `now`.
    pub fn is_revoked(&self, vehicle: VehicleId, now: f64) -> bool {
        match (self.entries.get(&vehicle), self.validity_s) {
            (Some(rec), Some(validity)) => now - rec.revoked_at <= validity,
            (Some(_), None) => true,
            (None, _) => false,
        }
    }

    /// The revocation record for a vehicle, if any.
    pub fn record(&self, vehicle: VehicleId) -> Option<&RevocationRecord> {
        self.entries.get(&vehicle)
    }

    /// Number of revoked credentials (including expired entries).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the CRL is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops entries that expired before `now` (no-op for permanent
    /// CRLs). Removals are journaled in ascending vehicle-id order so
    /// mirrors replaying the delta apply identical op sequences.
    pub fn prune(&mut self, now: f64) {
        if let Some(validity) = self.validity_s {
            let mut victims: Vec<VehicleId> = self
                .entries
                .iter()
                .filter(|(_, rec)| now - rec.revoked_at > validity)
                .map(|(v, _)| *v)
                .collect();
            victims.sort_unstable_by_key(|v| v.0);
            for v in victims {
                self.entries.remove(&v);
                self.journal(CrlOp::Remove { vehicle: v });
            }
        }
    }

    /// Iterates over `(vehicle, record)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&VehicleId, &RevocationRecord)> {
        self.entries.iter()
    }

    /// The incremental update a mirror at sequence `cursor` needs.
    ///
    /// Returns the journaled ops after `cursor` when they are still
    /// retained; otherwise a full snapshot (entries as `Revoke` ops in
    /// ascending vehicle-id order) the mirror applies from scratch.
    pub fn delta_since(&self, cursor: u64) -> CrlDelta {
        if cursor >= self.seq {
            return CrlDelta {
                since: cursor,
                upto: self.seq,
                snapshot: false,
                ops: Vec::new(),
            };
        }
        let oldest_retained = self.log.first().map(|(s, _)| *s).unwrap_or(self.seq + 1);
        if cursor + 1 >= oldest_retained {
            let ops = self
                .log
                .iter()
                .filter(|(s, _)| *s > cursor)
                .map(|(_, op)| op.clone())
                .collect();
            CrlDelta {
                since: cursor,
                upto: self.seq,
                snapshot: false,
                ops,
            }
        } else {
            let mut items: Vec<(VehicleId, RevocationRecord)> =
                self.entries.iter().map(|(v, r)| (*v, r.clone())).collect();
            items.sort_unstable_by_key(|(v, _)| v.0);
            CrlDelta {
                since: cursor,
                upto: self.seq,
                snapshot: true,
                ops: items
                    .into_iter()
                    .map(|(vehicle, record)| CrlOp::Revoke { vehicle, record })
                    .collect(),
            }
        }
    }

    /// Applies a delta produced by [`delta_since`](Self::delta_since) on
    /// the distributing CRL, advancing this mirror's cursor to
    /// `delta.upto`. Mirrors do not re-journal applied ops.
    pub fn apply_delta(&mut self, delta: &CrlDelta) {
        if delta.snapshot {
            self.entries.clear();
        }
        for op in &delta.ops {
            match op {
                CrlOp::Revoke { vehicle, record } => {
                    self.entries.insert(*vehicle, record.clone());
                }
                CrlOp::Remove { vehicle } => {
                    self.entries.remove(vehicle);
                }
            }
        }
        self.seq = delta.upto;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(at: f64) -> RevocationRecord {
        RevocationRecord {
            revoked_at: at,
            reporter_count: 2,
            report_count: 4,
            mean_margin: 0.1,
        }
    }

    #[test]
    fn permanent_revocation_never_expires() {
        let mut crl = CertificateRevocationList::new(None);
        crl.revoke(VehicleId(1), record(0.0));
        assert!(crl.is_revoked(VehicleId(1), 1e9));
    }

    #[test]
    fn expiring_revocation_lapses() {
        let mut crl = CertificateRevocationList::new(Some(60.0));
        crl.revoke(VehicleId(1), record(100.0));
        assert!(crl.is_revoked(VehicleId(1), 150.0));
        assert!(!crl.is_revoked(VehicleId(1), 200.0));
    }

    #[test]
    fn prune_removes_expired_only() {
        let mut crl = CertificateRevocationList::new(Some(60.0));
        crl.revoke(VehicleId(1), record(0.0));
        crl.revoke(VehicleId(2), record(100.0));
        crl.prune(120.0);
        assert_eq!(crl.len(), 1);
        assert!(crl.record(VehicleId(2)).is_some());
    }

    #[test]
    fn re_revocation_returns_previous() {
        let mut crl = CertificateRevocationList::new(None);
        assert!(crl.revoke(VehicleId(1), record(0.0)).is_none());
        let prev = crl.revoke(VehicleId(1), record(50.0));
        assert_eq!(prev.unwrap().revoked_at, 0.0);
    }

    #[test]
    fn unknown_vehicle_not_revoked() {
        let crl = CertificateRevocationList::new(None);
        assert!(!crl.is_revoked(VehicleId(9), 0.0));
        assert!(crl.is_empty());
    }

    #[test]
    fn incremental_delta_catches_mirror_up() {
        let mut crl = CertificateRevocationList::new(None);
        let mut mirror = CertificateRevocationList::new(None);
        crl.revoke(VehicleId(1), record(0.0));
        crl.revoke(VehicleId(2), record(1.0));
        mirror.apply_delta(&crl.delta_since(mirror.seq()));
        assert_eq!(mirror, crl);
        // More churn; the mirror only fetches what it missed.
        crl.revoke(VehicleId(3), record(2.0));
        let delta = crl.delta_since(mirror.seq());
        assert!(!delta.snapshot);
        assert_eq!(delta.ops.len(), 1);
        mirror.apply_delta(&delta);
        assert_eq!(mirror, crl);
        assert_eq!(mirror.seq(), crl.seq());
    }

    #[test]
    fn up_to_date_mirror_gets_empty_delta() {
        let mut crl = CertificateRevocationList::new(None);
        crl.revoke(VehicleId(1), record(0.0));
        let delta = crl.delta_since(crl.seq());
        assert!(delta.ops.is_empty());
        assert!(!delta.snapshot);
    }

    #[test]
    fn compaction_falls_back_to_snapshot() {
        let mut crl = CertificateRevocationList::new(None);
        crl.set_log_capacity(4);
        for i in 0..20u32 {
            crl.revoke(VehicleId(i), record(i as f64));
        }
        assert!(crl.log_len() <= 4);
        // A mirror that last synced before the retained journal must get
        // a full snapshot…
        let delta = crl.delta_since(2);
        assert!(delta.snapshot);
        let mut mirror = CertificateRevocationList::new(None);
        mirror.apply_delta(&delta);
        assert_eq!(mirror, crl);
        // …while a recent mirror still syncs incrementally.
        let recent = crl.delta_since(crl.seq() - 2);
        assert!(!recent.snapshot);
        assert_eq!(recent.ops.len(), 2);
    }

    #[test]
    fn snapshot_clears_stale_mirror_entries() {
        let mut crl = CertificateRevocationList::new(Some(60.0));
        crl.set_log_capacity(2);
        crl.revoke(VehicleId(1), record(0.0));
        let mut mirror = crl.clone();
        // The entry expires and is pruned, then the journal churns past
        // the mirror's cursor.
        crl.prune(1000.0);
        for i in 10..20u32 {
            crl.revoke(VehicleId(i), record(1000.0));
        }
        let delta = crl.delta_since(mirror.seq());
        assert!(delta.snapshot);
        mirror.apply_delta(&delta);
        assert_eq!(mirror, crl);
        assert!(mirror.record(VehicleId(1)).is_none());
    }

    #[test]
    fn prune_journals_removals_deterministically() {
        let mut a = CertificateRevocationList::new(Some(10.0));
        let mut b = CertificateRevocationList::new(Some(10.0));
        // Same entries inserted in different orders.
        for i in [3u32, 1, 2] {
            a.revoke(VehicleId(i), record(0.0));
        }
        for i in [2u32, 3, 1] {
            b.revoke(VehicleId(i), record(0.0));
        }
        a.prune(100.0);
        b.prune(100.0);
        let ops_a: Vec<CrlOp> = a.delta_since(3).ops;
        let ops_b: Vec<CrlOp> = b.delta_since(3).ops;
        assert_eq!(ops_a, ops_b);
    }

    #[test]
    fn equality_ignores_journal_history() {
        let mut a = CertificateRevocationList::new(None);
        let mut b = CertificateRevocationList::new(None);
        a.revoke(VehicleId(1), record(0.0));
        a.revoke(VehicleId(2), record(1.0));
        b.revoke(VehicleId(2), record(1.0));
        b.revoke(VehicleId(1), record(0.0));
        assert_eq!(a, b);
    }
}
