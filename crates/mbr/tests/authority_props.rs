//! Property tests for the fleet-scale evidence pipeline (ISSUE 10):
//! ingest-order permutation invariance of the conviction set, sharded
//! `ingest_batch` ≡ serial `ingest` equivalence, and the reporter
//! cardinality sketch's error bound against an exact `HashSet`.

use proptest::prelude::*;
use std::collections::HashSet;
use vehigan_mbr::{
    AuthorityPolicy, CertificateRevocationList, Mbr, MisbehaviorAuthority, ReporterSketch,
    EXACT_CAP,
};
use vehigan_sim::VehicleId;

const WINDOW_S: f64 = 60.0;
const EV_LEN: usize = 4;

fn policy() -> AuthorityPolicy {
    AuthorityPolicy {
        min_reporters: 2,
        min_reports: 3,
        window_s: WINDOW_S,
        evidence_len: EV_LEN,
        revocation_validity_s: None,
    }
}

fn mbr(reporter: u32, suspect: u32, t: f64) -> Mbr {
    Mbr {
        reporter: VehicleId(reporter),
        suspect: VehicleId(suspect),
        timestamp: t,
        score: 1.0,
        threshold: 0.5,
        evidence: vec![0.0; EV_LEN],
    }
}

/// Splitmix64 — the tests' own deterministic RNG (the vendored proptest
/// stub has no shuffle strategy, so shuffles are hand-rolled from a
/// sampled seed).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next()) * u128::from(bound)) >> 64) as u64
    }

    fn shuffle<T>(&mut self, v: &mut [T]) {
        for i in (1..v.len()).rev() {
            v.swap(i, self.below(i as u64 + 1) as usize);
        }
    }
}

/// Builds a constrained report soup whose conviction set is provably
/// order-independent, returning `(reports, expected_convicted)`:
///
/// - **hot** suspects get `≥ 2·min_reports` reports from
///   `≥ min_reporters` distinct reporters, all timestamps within a
///   `window/2` span — every permutation convicts them (no permutation
///   can make a report stale, and at the last ingested report the decayed
///   weight is still `≥ count/2 ≥ min_reports` with every reporter entry
///   live);
/// - **cold** suspects stay under one of the two bars structurally
///   (fewer distinct reporters than `min_reporters`, or fewer total
///   reports than `min_reports` — decayed weight never exceeds the raw
///   report count) — no permutation convicts them.
///
/// Unconstrained soups are genuinely order-dependent (a borderline
/// suspect can convict under one interleaving and decay under another),
/// so the invariance property only holds — and is only claimed — for
/// streams with this hot/cold margin.
fn constrained_soup(seed: u64, n_suspects: usize) -> (Vec<Mbr>, HashSet<VehicleId>) {
    let mut rng = Rng(seed);
    let p = policy();
    let mut reports = Vec::new();
    let mut hot = HashSet::new();
    for s in 0..n_suspects {
        let suspect = 100 + s as u32;
        let t0 = rng.below(1000) as f64 / 10.0;
        let is_hot = rng.below(2) == 0;
        let (n, reporters) = if is_hot {
            hot.insert(VehicleId(suspect));
            (
                2 * p.min_reports + rng.below(6) as usize,
                p.min_reporters + rng.below(3) as usize,
            )
        } else if rng.below(2) == 0 {
            // Too few distinct reporters, any volume.
            (1 + rng.below(5) as usize, 1)
        } else {
            // Too few reports, any reporter spread.
            (p.min_reports - 1, p.min_reporters + rng.below(2) as usize)
        };
        for i in 0..n {
            let reporter = 1000 + s as u32 * 10 + (i % reporters) as u32;
            let t = t0 + rng.below((WINDOW_S / 2.0 * 10.0) as u64) as f64 / 10.0;
            reports.push(mbr(reporter, suspect, t));
        }
    }
    rng.shuffle(&mut reports);
    (reports, hot)
}

fn convicted(crl: &CertificateRevocationList) -> HashSet<VehicleId> {
    crl.iter().map(|(v, _)| *v).collect()
}

/// An unconstrained report soup: valid and invalid reports, replays,
/// out-of-window timestamps — everything the serial/batch equivalence
/// must survive.
fn arbitrary_soup(seed: u64, n: usize) -> Vec<Mbr> {
    let mut rng = Rng(seed);
    (0..n)
        .map(|_| {
            let suspect = 100 + rng.below(8) as u32;
            let reporter = match rng.below(12) {
                0 => suspect, // self-report → rejected
                r => 1000 + r as u32,
            };
            let t = match rng.below(10) {
                0 => -(rng.below(500) as f64) / 10.0, // ancient → stale later
                _ => rng.below(3000) as f64 / 10.0,
            };
            let mut m = mbr(reporter, suspect, t);
            match rng.below(16) {
                0 => m.timestamp = f64::NAN,
                1 => m.score = 0.1, // below threshold
                2 => m.evidence = vec![0.0; EV_LEN + 1],
                _ => {}
            }
            m
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conviction_set_is_permutation_invariant(
        seed in proptest::arbitrary::any::<u64>(),
        n_suspects in 1usize..6,
    ) {
        let (reports, hot) = constrained_soup(seed, n_suspects);
        let mut reference = MisbehaviorAuthority::new(policy());
        for r in &reports {
            let _ = reference.ingest_ref(r);
        }
        prop_assert_eq!(convicted(reference.crl()), hot.clone());

        let mut rng = Rng(seed ^ 0xDEAD_BEEF);
        for _ in 0..4 {
            let mut permuted = reports.clone();
            rng.shuffle(&mut permuted);
            let mut ma = MisbehaviorAuthority::new(policy());
            for r in &permuted {
                let _ = ma.ingest_ref(r);
            }
            prop_assert_eq!(convicted(ma.crl()), hot.clone());
        }
    }

    #[test]
    fn sharded_batch_matches_serial(
        seed in proptest::arbitrary::any::<u64>(),
        n in 1usize..300,
        n_shards in 1usize..9,
        chunk in 1usize..64,
    ) {
        let reports = arbitrary_soup(seed, n);
        let mut serial = MisbehaviorAuthority::with_shards(policy(), n_shards);
        for r in &reports {
            let _ = serial.ingest_ref(r);
        }
        let mut batched = MisbehaviorAuthority::with_shards(policy(), n_shards);
        let mut batch_convictions = 0u64;
        for c in reports.chunks(chunk) {
            batch_convictions += batched.ingest_batch(c).convictions.len() as u64;
        }
        prop_assert_eq!(serial.crl(), batched.crl());
        prop_assert_eq!(serial.evidence_fingerprint(), batched.evidence_fingerprint());
        prop_assert_eq!(serial.stats(), batched.stats());
        prop_assert_eq!(batch_convictions, batched.stats().convictions);
    }

    #[test]
    fn sketch_cardinality_error_is_bounded(
        seed in proptest::arbitrary::any::<u64>(),
        n in 1usize..10_000,
    ) {
        let mut rng = Rng(seed);
        let mut sketch = ReporterSketch::new();
        let mut exact: HashSet<VehicleId> = HashSet::new();
        let t = 0.0;
        for _ in 0..n {
            // Duplicates on purpose: cardinality counts distinct ids.
            let id = VehicleId(rng.below(n as u64 * 2) as u32);
            sketch.observe(id, t, WINDOW_S);
            exact.insert(id);
        }
        let est = sketch.count(t, WINDOW_S);
        let truth = exact.len();
        if truth <= EXACT_CAP && !sketch.is_sketch() {
            prop_assert_eq!(est, truth);
        } else {
            // HLL with 256 registers: σ ≈ 6.5 %; 3σ plus slack for the
            // small-range correction handoff.
            let tol = (truth as f64 * 0.25).max(4.0);
            prop_assert!(
                (est as f64 - truth as f64).abs() <= tol,
                "estimate {} vs exact {} (tolerance {:.0})",
                est,
                truth,
                tol
            );
        }
    }
}
