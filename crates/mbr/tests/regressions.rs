//! Regression tests for the four authority bugfixes in ISSUE 10. Each
//! test encodes the observable failure of the pre-fix code:
//!
//! 1. `Mbr::validate` accepted non-finite timestamps, letting a NaN
//!    report pin itself into the corroboration state forever.
//! 2. Out-of-order/replayed reports bypassed window expiry (the queue was
//!    pruned against each *arriving* report's timestamp, so replaying old
//!    evidence kept it alive and unbounded).
//! 3. A conviction revoked only the accused pseudonym; the attacker kept
//!    transmitting under its other SCMS pseudonyms, or rotated to a
//!    fresh one.
//! 4. With `revocation_validity_s: Some(_)`, reports about a
//!    revoked-but-still-misbehaving vehicle were discarded, so the
//!    revocation lapsed and the vehicle rejoined the network.

use vehigan_mbr::{
    AuthorityPolicy, IngestOutcome, InvalidMbrError, LongTermId, Mbr, MisbehaviorAuthority,
    PseudonymManager, SuspectEvidence,
};
use vehigan_sim::VehicleId;

const EV_LEN: usize = 4;

fn policy() -> AuthorityPolicy {
    AuthorityPolicy {
        min_reporters: 2,
        min_reports: 3,
        window_s: 60.0,
        evidence_len: EV_LEN,
        revocation_validity_s: None,
    }
}

fn mbr(reporter: u32, suspect: u32, t: f64) -> Mbr {
    Mbr {
        reporter: VehicleId(reporter),
        suspect: VehicleId(suspect),
        timestamp: t,
        score: 1.0,
        threshold: 0.5,
        evidence: vec![0.0; EV_LEN],
    }
}

/// Bugfix 1: a NaN/∞ timestamp must be rejected at validation, not
/// absorbed into evidence (NaN defeats every window comparison, so the
/// pre-fix code retained such a report forever).
#[test]
fn non_finite_timestamps_never_reach_evidence() {
    let mut ma = MisbehaviorAuthority::new(policy());
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let mut r = mbr(1, 100, 0.0);
        r.timestamp = bad;
        assert_eq!(r.validate(EV_LEN), Err(InvalidMbrError::NonFiniteTimestamp));
        assert_eq!(
            ma.ingest(r),
            IngestOutcome::Rejected(InvalidMbrError::NonFiniteTimestamp)
        );
    }
    assert_eq!(ma.stats().rejected, 3);
    assert_eq!(ma.pending_suspects(), 0, "rejected reports left state");
}

/// Bugfix 2: replayed/ancient reports are discarded against the
/// suspect's high-water clock instead of silently re-arming the window.
/// Pre-fix, the replays below corroborated a conviction out of evidence
/// that expired 940 seconds earlier.
#[test]
fn replayed_reports_cannot_resurrect_expired_evidence() {
    let mut ma = MisbehaviorAuthority::new(policy());
    // One stale-but-real accusation, long since expired…
    assert!(matches!(
        ma.ingest(mbr(1, 100, 10.0)),
        IngestOutcome::Pending { .. }
    ));
    // …then the suspect's clock moves far past it.
    assert!(matches!(
        ma.ingest(mbr(2, 100, 1000.0)),
        IngestOutcome::Pending { .. }
    ));
    // An attacker replays captured old reports from distinct reporters.
    // Each is a full window older than the high-water mark: discarded.
    for reporter in 3..8 {
        assert_eq!(
            ma.ingest(mbr(reporter, 100, 10.0)),
            IngestOutcome::StaleDiscarded
        );
    }
    assert_eq!(ma.stats().stale_discarded, 5);
    assert_eq!(
        ma.stats().convictions,
        0,
        "replays corroborated a conviction"
    );
    assert!(ma.crl().is_empty());
    // And the per-suspect state the replay attack inflates is constant
    // size by construction — no retained queue to fill.
    assert!(std::mem::size_of::<SuspectEvidence>() <= 512);
}

/// Bugfix 3: with SCMS linkage attached, a conviction revokes every
/// pseudonym of the resolved long-term identity, and rotating to a fresh
/// pseudonym after conviction is revoked at issue time.
#[test]
fn conviction_revokes_all_linked_pseudonyms_and_rotations() {
    let mut scms = PseudonymManager::new();
    let lt = LongTermId(7);
    let p1 = scms.issue(lt);
    let p2 = scms.issue(lt);
    let bystander = scms.issue(LongTermId(8));
    let mut ma = MisbehaviorAuthority::new(policy()).with_linkage(scms);

    let _ = ma.ingest(mbr(1, p1.0, 0.0));
    let _ = ma.ingest(mbr(2, p1.0, 1.0));
    let out = ma.ingest(mbr(1, p1.0, 2.0));
    assert!(matches!(out, IngestOutcome::Revoked(_)));

    // The accused pseudonym AND its sibling are both on the CRL.
    assert!(ma.crl().is_revoked(p1, 2.0));
    assert!(
        ma.crl().is_revoked(p2, 2.0),
        "sibling pseudonym escaped the conviction"
    );
    assert!(!ma.crl().is_revoked(bystander, 2.0));

    // Rotating after conviction doesn't readmit the vehicle.
    let p3 = ma.issue_pseudonym(lt, 3.0);
    assert!(
        ma.crl().is_revoked(p3, 3.0),
        "post-conviction rotation escaped revocation"
    );
    let clean = ma.issue_pseudonym(LongTermId(8), 3.0);
    assert!(!ma.crl().is_revoked(clean, 3.0));
}

/// Bugfix 4: a time-limited revocation under continuous, corroborated
/// misbehavior is extended instead of lapsing. Pre-fix, reports about an
/// actively revoked vehicle were discarded, so at `revoked_at +
/// validity` the vehicle silently rejoined the network.
#[test]
fn continuous_misbehavior_extends_time_limited_revocations() {
    let mut ma = MisbehaviorAuthority::new(AuthorityPolicy {
        revocation_validity_s: Some(5.0),
        ..policy()
    });
    // Corroborate the first conviction by t=2.
    let mut t = 0.0;
    for reporter in 1..4 {
        let _ = ma.ingest(mbr(reporter, 100, t));
        t += 1.0;
    }
    assert!(ma.crl().is_revoked(VehicleId(100), 2.0));

    // The vehicle keeps misbehaving; reports keep arriving from rotating
    // observers at 1 Hz for 30 s — far past the original 5 s validity.
    let mut extensions = 0;
    while t < 30.0 {
        // The revocation must be active at every instant of the horizon
        // — pre-fix it lapsed at t=7 (revoked_at 2 + validity 5) and the
        // vehicle rejoined until re-corroborated from scratch.
        assert!(
            ma.crl().is_revoked(VehicleId(100), t),
            "revocation lapsed at t={t} despite continuous misbehavior"
        );
        if let IngestOutcome::Extended(_) = ma.ingest(mbr(1 + (t as u32 % 3), 100, t)) {
            extensions += 1;
        }
        t += 1.0;
    }
    assert!(extensions > 0, "no extension ever issued");
    assert_eq!(ma.stats().extensions, extensions);
    let since = ma.crl().record(VehicleId(100)).unwrap().revoked_at;
    assert!(since > 5.0, "record was never refreshed");
    assert!(ma.crl().is_revoked(VehicleId(100), 30.0));
}
