//! Misbehavior reporting end-to-end: multiple observer RSUs detect a
//! misbehaving sender, file MBRs, and the misbehavior authority
//! corroborates the evidence and revokes the attacker's credentials
//! (the §I/§II security loop around the detector).
//!
//! ```text
//! cargo run --release --example reporting_authority
//! ```

use vehigan::core::{Pipeline, PipelineConfig};
use vehigan::features::StreamTracker;
use vehigan::mbr::{
    AuthorityPolicy, IngestOutcome, LongTermId, Mbr, MisbehaviorAuthority, PseudonymManager,
};
use vehigan::sim::VehicleId;
use vehigan::tensor::init::seeded_rng;
use vehigan::vasp::{inject, Attack, AttackParams, AttackPolicy};

fn main() {
    println!("=== VehiGAN reporting & revocation demo ===\n");
    println!("[setup] training the detector…");
    let mut pipeline = Pipeline::run(PipelineConfig::demo());

    // SCMS: enroll the fleet; the attacker rotates pseudonyms mid-run.
    let mut scms = PseudonymManager::new();
    let attacker_lt = LongTermId(1000);
    let attacker_p1 = scms.issue(attacker_lt);
    let attacker_p2 = scms.issue(attacker_lt);

    // Three observers (e.g. RSUs) with their own reporter pseudonyms.
    let observers: Vec<VehicleId> = (0..3).map(|i| scms.issue(LongTermId(i))).collect();

    // The attacker's radio trace: a test-fleet vehicle falsifying heading
    // and yaw rate coherently, split across its two pseudonyms.
    let attack = Attack::by_name("RandomHeadingYawRate").expect("catalog");
    let mut rng = seeded_rng(3);
    let base = pipeline.test_fleet()[0].clone();
    let attacked = inject(
        &base,
        attack,
        AttackPolicy::Persistent,
        &AttackParams::default(),
        &mut rng,
    );
    let half = attacked.trace.len() / 2;

    let policy = AuthorityPolicy {
        min_reporters: 2,
        min_reports: 4,
        window_s: 120.0,
        evidence_len: 120,
        revocation_validity_s: None,
    };
    // Handing the SCMS linkage to the MA means a conviction revokes
    // *every* pseudonym of the resolved long-term identity.
    let mut ma = MisbehaviorAuthority::new(policy).with_linkage(scms);
    println!(
        "[setup] MA policy: ≥{} reporters, ≥{} reports within {}s\n",
        policy.min_reporters, policy.min_reports, policy.window_s
    );

    let mut revoked_at: Option<(VehicleId, f64)> = None;
    'outer: for (pseudonym, msgs) in [
        (attacker_p1, &attacked.trace.bsms[..half]),
        (attacker_p2, &attacked.trace.bsms[half..]),
    ] {
        println!("attacker now transmitting as {pseudonym}");
        // Each observer maintains its own window buffer over the stream.
        for (oi, &observer) in observers.iter().enumerate() {
            let mut tracker = StreamTracker::new(10, pipeline.scaler.clone());
            for (i, bsm) in msgs.iter().enumerate() {
                let mut tagged = *bsm;
                tagged.vehicle_id = pseudonym;
                let Some(snapshot) = tracker.push(&tagged) else {
                    continue;
                };
                if i % 11 != oi {
                    continue; // observers sample different instants
                }
                if let Some(report) = pipeline.vehigan.check_vehicle(pseudonym, snapshot).unwrap() {
                    let mbr = Mbr {
                        reporter: observer,
                        suspect: report.vehicle,
                        timestamp: tagged.timestamp,
                        score: report.score,
                        threshold: report.threshold,
                        evidence: report.evidence.as_slice().to_vec(),
                    };
                    match ma.ingest(mbr) {
                        IngestOutcome::Revoked(rec) => {
                            println!(
                                "  REVOKED {pseudonym} at t={:.1}s ({} reporters, {} reports, mean margin {:.3})",
                                tagged.timestamp, rec.reporter_count, rec.report_count, rec.mean_margin
                            );
                            revoked_at = Some((pseudonym, tagged.timestamp));
                            break 'outer;
                        }
                        IngestOutcome::Pending { reporters, reports } => {
                            println!(
                                "  MBR from {observer}: pending ({reporters} reporters, {reports} reports)"
                            );
                        }
                        IngestOutcome::AlreadyRevoked
                        | IngestOutcome::Extended(_)
                        | IngestOutcome::StaleDiscarded => {}
                        IngestOutcome::Rejected(e) => println!("  MBR rejected: {e}"),
                    }
                }
            }
        }
    }

    let stats = ma.stats();
    println!(
        "\nMA processed {} valid reports ({} rejected)",
        stats.accepted, stats.rejected
    );
    match revoked_at {
        Some((pseudonym, t)) => {
            // Linkage: the MA revoked ALL of the attacker's pseudonyms.
            let lt = ma.scms().unwrap().resolve(pseudonym).expect("linked");
            println!(
                "linkage: {pseudonym} → long-term {lt:?}; all pseudonyms: {:?}",
                ma.scms().unwrap().pseudonyms_of(lt)
            );
            assert!(ma.crl().is_revoked(pseudonym, t));
            assert!(ma.crl().is_revoked(attacker_p1, t));
            assert!(ma.crl().is_revoked(attacker_p2, t));
            // Rotating to a fresh pseudonym doesn't help either: the MA
            // revokes new issues for convicted vehicles at the source.
            let p3 = ma.issue_pseudonym(attacker_lt, t);
            assert!(ma.crl().is_revoked(p3, t));
            println!("rotation {p3} auto-revoked; attacker isolated from the V2X network.");
        }
        None => println!("no conviction at this scale — rerun with a larger training budget."),
    }
}
