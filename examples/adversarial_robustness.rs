//! Adversarial robustness demo: FGSM AFP/AFN attacks against a single
//! WGAN vs the randomized ensemble (§III-G, §V-B).
//!
//! ```text
//! cargo run --release --example adversarial_robustness
//! ```

use vehigan::core::adversarial::{afn_attack, afp_attack, multi_model_afp, random_noise};
use vehigan::core::{Pipeline, PipelineConfig};
use vehigan::tensor::init::seeded_rng;
use vehigan::tensor::Sequential;

fn rate_above(scores: &[f32], tau: f32) -> f64 {
    scores.iter().filter(|&&s| s > tau).count() as f64 / scores.len() as f64
}

fn main() {
    println!("=== VehiGAN adversarial robustness demo ===\n");
    let mut pipeline = Pipeline::run(PipelineConfig::demo());
    let benign = pipeline.test_benign_windows();
    // Cap gradient work.
    let indices: Vec<usize> = (0..benign.len().min(200)).collect();
    let x = benign.x.take(&indices);
    let eps = 0.01;

    println!("[1/4] white-box AFP on the single best WGAN (ε = {eps})…");
    let (single_fpr, adv_scores_on_members, noise_fpr) = {
        let m = pipeline.vehigan.m();
        let adv = {
            let best = &mut pipeline.vehigan.members_mut()[0];
            afp_attack(best.wgan.critic_mut(), &x, eps)
        };
        let noisy = random_noise(&x, eps, &mut seeded_rng(1));
        let best = &mut pipeline.vehigan.members_mut()[0];
        let fpr = rate_above(&best.wgan.score_batch(&adv), best.threshold);
        let nf = rate_above(&best.wgan.score_batch(&noisy), best.threshold);
        let per_member: Vec<Vec<f32>> = (0..m)
            .map(|i| pipeline.vehigan.members_mut()[i].wgan.score_batch(&adv))
            .collect();
        (fpr, per_member, nf)
    };
    println!("      single-model FPR under AFP:   {single_fpr:.3}");
    println!("      single-model FPR under noise: {noise_fpr:.3}");

    println!("\n[2/4] the same samples against the full ensemble (gray-box transfer)…");
    let m = pipeline.vehigan.m();
    let k = pipeline.vehigan.m(); // deploy everything for the demo
    let n = adv_scores_on_members[0].len();
    let mut mean_scores = vec![0.0f32; n];
    for row in &adv_scores_on_members {
        for (acc, &s) in mean_scores.iter_mut().zip(row) {
            *acc += s / m as f32;
        }
    }
    let tau: f32 = pipeline
        .vehigan
        .members()
        .iter()
        .map(|c| c.threshold)
        .sum::<f32>()
        / m as f32;
    let graybox_fpr = rate_above(&mean_scores, tau);
    println!("      VEHIGAN_{m}^{k} FPR: {graybox_fpr:.3}");

    println!("\n[3/4] adaptive multi-model AFP (attacker differentiates all {m} critics)…");
    let adv_multi = {
        let members = pipeline.vehigan.members_mut();
        let mut critics: Vec<&mut Sequential> =
            members.iter_mut().map(|c| c.wgan.critic_mut()).collect();
        multi_model_afp(&mut critics, &x, eps)
    };
    let all: Vec<usize> = (0..m).collect();
    let multi_result = pipeline
        .vehigan
        .score_with_members(&all, &adv_multi)
        .unwrap();
    let multi_fpr = rate_above(&multi_result.scores, multi_result.threshold);
    let improvement = (single_fpr - multi_fpr) / single_fpr.max(1e-9) * 100.0;
    println!("      VEHIGAN_{m}^{m} FPR under the adaptive attack: {multi_fpr:.3}");
    println!("      FPR improvement vs single white-box: {improvement:.0}% (paper: ≈92%)");

    println!("\n[4/4] AFN attacks on misbehavior windows (intrinsic robustness)…");
    let attack = vehigan::vasp::Attack::by_name("RandomSpeed").expect("catalog");
    let mal_ds = pipeline.test_attack_windows(attack);
    let mal_idx: Vec<usize> = mal_ds.malicious_indices().into_iter().take(200).collect();
    let mal = mal_ds.x.take(&mal_idx);
    let best = &mut pipeline.vehigan.members_mut()[0];
    let fnr_before = 1.0 - rate_above(&best.wgan.score_batch(&mal), best.threshold);
    let adv_mal = afn_attack(best.wgan.critic_mut(), &mal, eps);
    let fnr_after = 1.0 - rate_above(&best.wgan.score_batch(&adv_mal), best.threshold);
    println!("      FNR before AFN: {fnr_before:.3}, after AFN: {fnr_after:.3}");
    println!("      (AFN barely moves the needle — WGAN critics are intrinsically robust, Fig 5b)");
}
