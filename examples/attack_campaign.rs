//! Attack campaign: evaluate a trained VehiGAN ensemble against the
//! complete Table I/III threat matrix (all 35 in-scope misbehaviors).
//!
//! ```text
//! cargo run --release --example attack_campaign
//! ```

use vehigan::core::{Pipeline, PipelineConfig};
use vehigan::metrics::{auprc, auroc};
use vehigan::vasp::Attack;

fn main() {
    println!("=== VehiGAN 35-attack campaign ===\n");
    let pipeline = Pipeline::run(PipelineConfig::demo());
    let members: Vec<usize> = (0..pipeline.vehigan.m()).collect();

    println!(
        "{:<30} {:>7} {:>7} {:>9} {:>10}",
        "attack", "AUROC", "AUPRC", "windows", "malicious"
    );
    let mut worst: (String, f64) = (String::new(), 1.0);
    let mut advanced_sum = 0.0;
    let mut advanced_n = 0;
    let mut total = 0.0;
    let catalog = Attack::catalog();
    for &attack in &catalog {
        let test = pipeline.test_attack_windows(attack);
        let result = pipeline
            .vehigan
            .score_with_members(&members, &test.x)
            .unwrap();
        let roc = auroc(&result.scores, &test.labels);
        let prc = auprc(&result.scores, &test.labels);
        println!(
            "{:<30} {roc:>7.3} {prc:>7.3} {:>9} {:>10}",
            attack.name(),
            test.len(),
            test.malicious_indices().len()
        );
        total += roc;
        if roc < worst.1 {
            worst = (attack.name(), roc);
        }
        if attack.is_advanced() {
            advanced_sum += roc;
            advanced_n += 1;
        }
    }
    println!(
        "\naverage AUROC over {} attacks: {:.3}",
        catalog.len(),
        total / catalog.len() as f64
    );
    println!(
        "advanced heading&yaw-rate block: {:.3} average over {advanced_n} attacks",
        advanced_sum / advanced_n as f64
    );
    println!(
        "hardest attack: {} (AUROC {:.3}) — the paper's hardest is ConstantPositionOffset, \
         which violates no physics and needs map checks (§V-C)",
        worst.0, worst.1
    );
}
