//! Streaming OBU: the testing-phase deployment loop (§III-A.2).
//!
//! ```text
//! cargo run --release --example streaming_obu
//! ```
//!
//! Simulates an on-board unit receiving interleaved BSMs from nearby
//! vehicles (one of which misbehaves), maintaining the latest-w window per
//! pseudonym, scoring each refresh with the randomized ensemble, and
//! emitting misbehavior reports — plus the quantized lite path for
//! constrained hardware.

use std::collections::HashMap;
use vehigan::core::{Pipeline, PipelineConfig};
use vehigan::features::StreamTracker;
use vehigan::lite::LiteCritic;
use vehigan::sim::{Bsm, VehicleId};
use vehigan::tensor::init::seeded_rng;
use vehigan::vasp::{inject, Attack, AttackParams, AttackPolicy};

fn main() {
    println!("=== VehiGAN streaming OBU demo ===\n");
    println!("[setup] training the detector…");
    let mut pipeline = Pipeline::run(PipelineConfig::demo());
    let w = 10;

    // Build the radio environment: the held-out fleet, with vehicle 0
    // replaced by a misbehaving sender (coherent fake turn, Fig 1b).
    let attack = Attack::by_name("HighHeadingYawRate").expect("catalog");
    let mut rng = seeded_rng(99);
    let fleet = pipeline.test_fleet().to_vec();
    let attacker_id = fleet[0].id;
    let attacked = inject(
        &fleet[0],
        attack,
        AttackPolicy::Persistent,
        &AttackParams::default(),
        &mut rng,
    );
    println!(
        "[setup] {} vehicles in range; {attacker_id} persistently transmits {attack}\n",
        fleet.len()
    );

    // Interleave all messages by timestamp, as the radio would deliver.
    let mut inbox: Vec<&Bsm> = attacked
        .trace
        .bsms
        .iter()
        .chain(fleet[1..].iter().flat_map(|t| &t.bsms))
        .collect();
    inbox.sort_by(|a, b| a.timestamp.partial_cmp(&b.timestamp).expect("finite time"));

    // The OBU loop: window maintenance + randomized-ensemble scoring.
    let mut tracker = StreamTracker::new(w, pipeline.scaler.clone());
    let mut reports: HashMap<VehicleId, usize> = HashMap::new();
    let mut checks: HashMap<VehicleId, usize> = HashMap::new();
    let mut first_detection: Option<(VehicleId, f64)> = None;
    // Score every 5th refresh per vehicle to keep the demo fast.
    let mut refresh_count: HashMap<VehicleId, usize> = HashMap::new();
    for bsm in &inbox {
        if let Some(snapshot) = tracker.push(bsm) {
            let c = refresh_count.entry(bsm.vehicle_id).or_insert(0);
            *c += 1;
            if !(*c).is_multiple_of(5) {
                continue;
            }
            *checks.entry(bsm.vehicle_id).or_insert(0) += 1;
            if let Some(report) = pipeline
                .vehigan
                .check_vehicle(bsm.vehicle_id, &snapshot)
                .unwrap()
            {
                *reports.entry(report.vehicle).or_insert(0) += 1;
                if first_detection.is_none() && report.vehicle == attacker_id {
                    first_detection = Some((report.vehicle, bsm.timestamp));
                }
            }
        }
    }

    println!("per-vehicle report rates (reports / scored windows):");
    let mut ids: Vec<VehicleId> = checks.keys().copied().collect();
    ids.sort();
    for id in ids {
        let r = reports.get(&id).copied().unwrap_or(0);
        let c = checks[&id];
        let marker = if id == attacker_id {
            "  << attacker"
        } else {
            ""
        };
        println!("  {id}: {r:>4}/{c}{marker}");
    }
    match first_detection {
        Some((id, t)) => {
            println!("\nfirst MBR for {id} at t = {t:.1}s (attack active from its first message)")
        }
        None => println!("\nno MBR raised for the attacker — try a larger training scale"),
    }

    // Lite path: the same critics, quantized and fused for constrained OBUs.
    println!("\n[lite] compiling the deployed critics for the int8 path…");
    let member = &pipeline.vehigan.members()[0];
    let mut lite = LiteCritic::compile(member.wgan.critic(), (10, 12, 1)).expect("critic compiles");
    println!("       {lite:?}");
    // Last push may be mid-warmup for that vehicle; skip the demo score then.
    let snapshot = tracker.push(inbox.last().expect("nonempty inbox"));
    if let Some(snap) = snapshot {
        let s = lite.score(snap.as_slice());
        println!(
            "       lite anomaly score of the final window: {s:.4} (τ = {:.4})",
            member.threshold
        );
    }
    println!("\ndone.");
}
