//! Streaming OBU/RSU: the testing-phase deployment loop (§III-A.2),
//! served through the `vehigan::serve` streaming data plane.
//!
//! ```text
//! cargo run --release --example streaming_obu
//! ```
//!
//! Simulates a roadside unit receiving interleaved BSMs from nearby
//! vehicles (one of which misbehaves). Instead of scoring each window
//! refresh one vehicle at a time, the `StreamServer` shards per-pseudonym
//! window state, batches every window completed in a radio tick across
//! vehicles, screens the batch with the fused int8 tier-1 gate, and
//! escalates only suspicious windows to the full f32 ensemble.
//!
//! The pre-serve, single-vehicle-at-a-time loop this replaces looked
//! like this (kept for reference — it still works, and the determinism
//! test in `crates/serve/tests/determinism.rs` proves the served path is
//! bitwise identical to it):
//!
//! ```ignore
//! let mut tracker = StreamTracker::new(w, pipeline.scaler.clone());
//! for bsm in &inbox {
//!     if let Some(snapshot) = tracker.push(bsm) {
//!         if let Some(report) = pipeline
//!             .vehigan
//!             .check_vehicle(bsm.vehicle_id, snapshot)
//!             .unwrap()
//!         {
//!             // one misbehavior report per flagged window refresh
//!         }
//!     }
//! }
//! ```

use std::collections::HashMap;
use vehigan::core::{Pipeline, PipelineConfig};
use vehigan::features::Tier0Calibration;
use vehigan::metrics::percentile;
use vehigan::serve::{escalation_threshold, EscalationPolicy, ServerConfig, StreamServer};
use vehigan::sim::{Bsm, VehicleId};
use vehigan::tensor::init::seeded_rng;
use vehigan::vasp::{inject, Attack, AttackParams, AttackPolicy};

fn main() {
    println!("=== VehiGAN streaming serve demo ===\n");
    println!("[setup] training the detector…");
    let mut pipeline = Pipeline::run(PipelineConfig::demo());
    pipeline.compile_int8().expect("int8 backend compiles");

    // Build the radio environment: the held-out fleet, with vehicle 0
    // replaced by a misbehaving sender (coherent fake turn, Fig 1b).
    let attack = Attack::by_name("HighHeadingYawRate").expect("catalog");
    let mut rng = seeded_rng(99);
    let fleet = pipeline.test_fleet().to_vec();
    let attacker_id = fleet[0].id;
    let attacked = inject(
        &fleet[0],
        attack,
        AttackPolicy::Persistent,
        &AttackParams::default(),
        &mut rng,
    );
    println!(
        "[setup] {} vehicles in range; {attacker_id} persistently transmits {attack}\n",
        fleet.len()
    );

    // Interleave all messages by timestamp, as the radio would deliver.
    let mut inbox: Vec<Bsm> = attacked
        .trace
        .bsms
        .iter()
        .chain(fleet[1..].iter().flat_map(|t| &t.bsms))
        .copied()
        .collect();
    inbox.sort_by(|a, b| {
        a.timestamp
            .partial_cmp(&b.timestamp)
            .expect("finite time")
            .then(a.vehicle_id.cmp(&b.vehicle_id))
    });

    // Calibrate the tier-1 escalation cutoff on benign training windows:
    // windows whose int8 gate score clears the 90th benign percentile are
    // re-scored by the full f32 ensemble (DESIGN.md §10).
    let k = pipeline.vehigan.k();
    let members: Vec<usize> = (0..k).collect();
    let gate = pipeline
        .vehigan
        .score_with_members_int8(&members, &pipeline.train_windows.x)
        .expect("gate scores");
    let tau_esc = escalation_threshold(&gate.scores, 90.0);
    println!("[setup] int8 gate over {k} members, escalation cutoff τ_esc = {tau_esc:.4}");

    // Arm the tier-0 physics gate (DESIGN.md §12): per-vehicle CUSUM/EWMA
    // kinematic monitors fit on the benign training fleet. Windows whose
    // monitors stay deep inside the benign envelope are suppressed before
    // the int8 ensemble ever runs, re-emitting the vehicle's last real
    // tier-1 score (re-screened at least every 4th window); anything
    // physically unusual — and any cold or freshly-evicted vehicle —
    // falls through to tier 1.
    let window = pipeline.config.window.window;
    let mut tier0 =
        Tier0Calibration::fit(pipeline.train_fleet(), window, 0.995).expect("tier-0 fits");
    tier0.set_score_band(
        percentile(&gate.scores, 10.0),
        percentile(&gate.scores, 50.0),
        tau_esc,
    );
    println!("[setup] tier-0 monitors armed: warmup {window} rows, quantile 0.995\n");

    // The serve loop: ingest each radio tick as one batch, then score
    // every window completed that tick across all vehicles at once.
    let mut server = StreamServer::new(
        &pipeline.vehigan,
        pipeline.scaler.clone(),
        ServerConfig {
            n_shards: 2,
            policy: EscalationPolicy::Threshold(tau_esc),
            members: Some(members.clone()),
            gate_members: Some(members),
            tier0: Some(tier0),
            ..ServerConfig::default()
        },
    )
    .expect("server builds");
    let mut reports: HashMap<VehicleId, usize> = HashMap::new();
    let mut windows: HashMap<VehicleId, usize> = HashMap::new();
    let mut first_detection: Option<(VehicleId, f64)> = None;
    for tick in inbox.chunks(64) {
        server.ingest_batch(tick);
        for decision in server.tick().expect("tick scores") {
            *windows.entry(decision.vehicle).or_insert(0) += 1;
            if decision.flagged {
                *reports.entry(decision.vehicle).or_insert(0) += 1;
                if first_detection.is_none() && decision.vehicle == attacker_id {
                    first_detection = Some((decision.vehicle, decision.timestamp));
                }
            }
        }
    }
    let stats = server.stats();

    println!("per-vehicle report rates (flagged / scored windows):");
    let mut ids: Vec<VehicleId> = windows.keys().copied().collect();
    ids.sort();
    for id in ids {
        let r = reports.get(&id).copied().unwrap_or(0);
        let c = windows[&id];
        let marker = if id == attacker_id {
            "  << attacker"
        } else {
            ""
        };
        println!("  {id}: {r:>4}/{c}{marker}");
    }
    println!(
        "\nserved {} BSMs, scored {} windows, escalated {} ({:.1}%) to the f32 ensemble",
        stats.ingested,
        stats.windows_scored,
        stats.escalated,
        100.0 * stats.escalated as f64 / stats.windows_scored.max(1) as f64
    );
    // Tier traffic split: every scored window lands in exactly one tier.
    let scored = stats.windows_scored.max(1) as f64;
    println!(
        "tiers: {} suppressed at tier 0 ({:.1}%), {} screened by the int8 gate ({:.1}%), \
         {} escalated to the f32 ensemble ({:.1}%)",
        stats.tier0_suppressed,
        100.0 * stats.tier0_suppressed as f64 / scored,
        stats.tier1_screened,
        100.0 * stats.tier1_screened as f64 / scored,
        stats.tier2_escalated,
        100.0 * stats.tier2_escalated as f64 / scored
    );
    // Resilience counters (DESIGN.md §11): a clean demo run holds the
    // server at 1× load with well-formed traffic, so all of these stay 0.
    println!(
        "resilience: rejected {} (non-finite {}, out-of-range {}, stale {}), \
         shed {}, degraded ticks {}, benched members {}, shard panics {}",
        stats.rejected.total(),
        stats.rejected.non_finite,
        stats.rejected.out_of_range,
        stats.rejected.stale,
        stats.shed,
        stats.degraded_ticks,
        stats.member_demotions,
        stats.shard_panics
    );
    match first_detection {
        Some((id, t)) => {
            println!("first MBR for {id} at t = {t:.1}s (attack active from its first message)")
        }
        None => println!("no MBR raised for the attacker — try a larger training scale"),
    }
    println!("\ndone.");
}
