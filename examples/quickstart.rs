//! Quickstart: train a small VehiGAN system end-to-end and detect a
//! misbehaving vehicle.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full Fig 2 workflow: simulate benign traffic → engineer
//! Table II features → train a WGAN zoo → pre-evaluate and select the
//! top-m critics → deploy a VEHIGAN_m^k ensemble → score a held-out
//! attack.

use vehigan::core::{Pipeline, PipelineConfig};
use vehigan::metrics::{auroc, Confusion};
use vehigan::vasp::Attack;

fn main() {
    println!("=== VehiGAN quickstart ===\n");
    println!("[1/3] training the pipeline (simulate → features → WGAN zoo → ensemble)…");
    let config = PipelineConfig::demo(); // minutes of CPU; use ::quick() for the full zoo
    let mut pipeline = Pipeline::run(config);
    println!(
        "      zoo of {} WGANs trained; top-{} selected; VEHIGAN_{}^{} deployed",
        pipeline.zoo.len(),
        pipeline.vehigan.m(),
        pipeline.vehigan.m(),
        pipeline.vehigan.k(),
    );
    for (rank, &idx) in pipeline.selected.iter().enumerate() {
        let e = &pipeline.zoo.entries()[idx];
        println!(
            "      #{:<2} {}  ADS={:.3}",
            rank + 1,
            e.wgan.config().id(),
            e.ads
        );
    }

    println!("\n[2/3] building a held-out attack scenario (25% of vehicles misbehave)…");
    let attack = Attack::by_name("HighHeadingYawRate").expect("catalog attack");
    let test = pipeline.test_attack_windows(attack);
    println!(
        "      attack: {attack} ({} windows, {} malicious)",
        test.len(),
        test.malicious_indices().len()
    );

    println!("\n[3/3] scoring with the randomized ensemble…");
    let result = pipeline.vehigan.score_batch(&test.x).unwrap();
    let score = auroc(&result.scores, &test.labels);
    let confusion = Confusion::at_threshold(&result.scores, &test.labels, result.threshold);
    println!(
        "      deployed members this inference: {:?}",
        result.members
    );
    println!("      AUROC = {score:.3}");
    println!(
        "      at the calibrated threshold: TPR={:.3} FPR={:.3}",
        confusion.tpr(),
        confusion.fpr()
    );
    assert!(score > 0.7, "quickstart detection degraded: AUROC {score}");
    println!("\ndone — see examples/attack_campaign.rs for the full 35-attack sweep.");
}
